"""Command-line interface: ``mepipe <command>`` / ``python -m repro``.

Commands:

* ``experiment <id>`` — regenerate one paper artifact (``list`` to see
  ids) and print it.
* ``schedule <method>`` — generate a schedule and print its ASCII
  timeline (Figures 2-7 style).
* ``verify <method>`` — statically verify a generated schedule
  (placement, coverage, deadlock witnesses, channel order, activation
  liveness, Table 3 closed-form agreement); exits non-zero on errors.
  ``--capacity`` additionally certifies bounded-channel deadlock
  freedom at the inferred minimal ring sizes (CP rules).
* ``check-model <method|grid>`` — statically analyze the (model
  partition, schedule) pair (shape/interface inference, gradient
  coverage, happens-before hazards); exits non-zero on errors.
  ``--capacity`` folds the CP rule family into each report.
* ``capacity <method>`` — infer per-channel ring capacities (minimal
  deadlock-free and backpressure-free), certify them, and print the
  plan + CP diagnostics; ``--check`` cross-validates the certificate
  against the bounded-channel simulator (CP004).
* ``plan <model> <gbs>`` — grid-search every method and print the
  winners (routed through the analytic first pass).
* ``evaluate <method>`` — analytically evaluate a generated schedule
  (certified closed forms, ``docs/evaluation.md``); ``--check``
  cross-validates against the event simulator (EV rules).
* ``trace <method>`` — run one iteration on the simulator and/or the
  NumPy runtime and export a combined Chrome/Perfetto trace via the
  telemetry bus (``repro.obs``).
* ``report <method>`` — run both substrates and print their uniform
  :class:`~repro.obs.metrics.IterationMetrics` side by side.

Subcommands are declared in the :data:`SUBCOMMANDS` registry — one
:class:`Subcommand` entry per command bundling its flag setup and
handler — so adding a command is one entry, not parser surgery.
"""

from __future__ import annotations

import argparse
import json as _json
import sys
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.model.spec import ModelSpec
    from repro.pipeline.runtime import RunResult
    from repro.schedules.base import PipelineProblem, Schedule
    from repro.schedules.verify import Report
    from repro.sim.executor import SimResult


# ----------------------------------------------------------------------
# Declarative subcommand registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Subcommand:
    """One CLI command: name, help line, flag setup, and handler."""

    name: str
    help: str
    configure: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], int]


# ----------------------------------------------------------------------
# Shared flag groups
# ----------------------------------------------------------------------
def _shape_flags(
    parser: argparse.ArgumentParser, *, aliases: bool = True
) -> None:
    """The (p, n, s, v, f, g) problem-shape flags every command shares."""
    alias = (lambda long, short: (long, short)) if aliases else (
        lambda long, short: (long,)
    )
    parser.add_argument(*alias("--stages", "--p"), type=int, default=4,
                        help="pipeline stages p")
    parser.add_argument(*alias("--microbatches", "--n"), type=int, default=4,
                        help="micro-batches n")
    parser.add_argument(*alias("--slices", "--s"), type=int, default=1,
                        help="slices per sample s (SPP)")
    parser.add_argument(*alias("--virtual", "--v"), type=int, default=1,
                        help="chunks per stage v (VPP)")
    parser.add_argument(*alias("--forwards", "--f"), type=int, default=None,
                        help="f variant (SVPP/MEPipe)")
    parser.add_argument("--wgrad-gemms", type=int, default=1)


def _report_flags(parser: argparse.ArgumentParser) -> None:
    """``--rules`` selector and ``--format text|json`` (``--json``
    is the historical shorthand), shared by verify and check-model."""
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report output format")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")


def _sweep_flags(parser: argparse.ArgumentParser, jobs_default: int | None) -> None:
    parser.add_argument("--jobs", type=int, default=jobs_default,
                        help="worker processes for the grid searches")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not reuse/persist sweep results on disk")
    parser.add_argument("--no-gen-cache", action="store_true",
                        help="disable in-process schedule-generation "
                             "memoization (repro.schedules.gencache)")


def _selected_rules(
    args: argparse.Namespace, known: Sequence[str]
) -> tuple[list[str] | None, str | None]:
    """Parse ``--rules`` against a rule catalogue.

    Returns ``(rules, error)``; ``rules`` is ``None`` when the flag was
    not given (meaning: all of ``known``).
    """
    if not args.rules:
        return None, None
    rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in known]
    if unknown:
        return None, f"unknown rule(s) {unknown}; known: {', '.join(known)}"
    return rules, None


def _emit_reports(reports: list[Report], args: argparse.Namespace) -> int:
    """Render one or more reports per ``--format``; exit status 1 when
    any carries an error-severity finding."""
    as_json = args.json or args.format == "json"
    if as_json:
        if len(reports) == 1:
            print(reports[0].render_json())
        else:
            print(_json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        print("\n".join(r.render_text() for r in reports))
    return 0 if all(r.ok for r in reports) else 1


def _build_for_cli(args: argparse.Namespace, method: str, **overrides):
    """Build (problem, schedule) from CLI shape flags.

    Returns ``(schedule, None)`` on success or ``(None, exit_code)``
    after printing the diagnosis — shared by every schedule-shaped
    command.
    """
    from repro.schedules import ScheduleError, build_problem, build_schedule

    kwargs = {
        "num_slices": args.slices,
        "virtual_size": args.virtual,
        "wgrad_gemms": args.wgrad_gemms,
    }
    kwargs.update(overrides)
    try:
        problem = build_problem(
            method, args.stages, args.microbatches, **kwargs
        )
        schedule = build_schedule(
            method, problem, forwards_before_first_backward=args.forwards
        )
    except KeyError as exc:  # unknown method name
        print(exc.args[0] if exc.args else exc)
        return None, 2
    except ValueError as exc:  # out-of-range shape (p/n/s/v/g)
        print(exc)
        return None, 2
    except ScheduleError as exc:
        # Invalid shape for the method, or the generator itself produced
        # a schedule the safety tier rejects — either way the message is
        # the diagnosis.
        print(exc)
        return None, 1
    return schedule, None


def _tiny_spec_for(problem: "PipelineProblem") -> "ModelSpec":
    """A miniature model spec executable under ``problem``.

    Enough decoder layers that embedding + head balance against them
    under the problem's chunking (the Section 7.1 layout), with the
    sequence divisible into the problem's slices.
    """
    from repro.model.spec import tiny_spec

    seq = 32
    if seq % problem.num_slices:
        seq = problem.num_slices * 8
    return tiny_spec(
        num_layers=2 * problem.num_chunks - 2, seq_length=seq
    )


def _run_both_substrates(
    args: argparse.Namespace,
    schedule: "Schedule",
    *,
    seed: int = 11,
    executor: str = "serial",
) -> "tuple[SimResult, RunResult]":
    """One iteration of ``schedule`` on the simulator and the runtime.

    ``executor`` selects the numerical substrate: ``"serial"`` for the
    single-process golden :class:`~repro.pipeline.PipelineRuntime`,
    ``"parallel"`` for the multi-process
    :class:`~repro.pipeline.ParallelPipelineRuntime` (one worker per
    stage; identical numerics, measured wall-clock overlap).

    The simulated result is stamped with the byte sizes of the
    runtime's actual float64 tensors, so the two substrates report the
    same communication volume (message counts always agree — they are
    derived from the same cross-stage boundary edges).
    """
    from repro.data import token_batches
    from repro.model.memory import sample_activation_bytes
    from repro.nn import build_model
    from repro.pipeline import ParallelPipelineRuntime, PipelineRuntime
    from repro.sim import UniformCost, simulate

    problem = schedule.problem
    spec = _tiny_spec_for(problem)
    batch = 2
    sim_result = simulate(schedule, UniformCost(problem, tw=args.tw))
    float64 = 8
    sim_result.comm_bytes_per_message = float(
        batch * (spec.seq_length // problem.num_slices)
        * spec.hidden_size * float64
    )
    sim_result.activation_bytes_per_unit = float(
        sample_activation_bytes(spec) * batch
    )
    tokens, targets = token_batches(
        spec.vocab_size, problem.num_microbatches, batch, spec.seq_length,
        seed=5,
    )
    model = build_model(spec, seed=seed)
    if executor == "parallel":
        run_result = ParallelPipelineRuntime(model, tokens, targets).run(schedule)
    else:
        run_result = PipelineRuntime(model, tokens, targets).run(schedule)
    return sim_result, run_result


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------
def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY
    from repro.experiments.common import configure_planner

    configure_planner(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        use_gen_cache=not args.no_gen_cache,
    )
    if args.id == "list":
        for key in REGISTRY:
            print(key)
        return 0
    if args.id not in REGISTRY:
        print(f"unknown experiment {args.id!r}; try: {', '.join(REGISTRY)}")
        return 2
    print(REGISTRY[args.id]().render())
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.obs.chrome import write_sim_trace
    from repro.sim import UniformCost, simulate
    from repro.viz import render_memory_profile, render_timeline

    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    result = simulate(schedule, UniformCost(schedule.problem, tw=args.tw))
    print(render_timeline(result, width=args.width))
    if args.memory:
        print()
        print(render_memory_profile(result, stage=0, width=args.width))
    if args.trace:
        path = write_sim_trace(result, args.trace)
        print(f"\nchrome trace written to {path} (open in ui.perfetto.dev)")
    return 0


def _merge_capacity_findings(
    report: "Report", schedule: "Schedule", rules: list[str] | None
) -> None:
    """Fold the CP rule family into a verifier/analyzer report in place
    (same catalogue, so findings render and filter uniformly)."""
    from repro.analysis.capacity import check_capacities

    cp = check_capacities(schedule)
    report.findings.extend(
        f for f in cp.findings if rules is None or f.rule_id in rules
    )
    report.checked_rules = tuple(report.checked_rules) + tuple(
        r for r in cp.checked_rules if rules is None or r in rules
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.capacity import CAPACITY_RULES
    from repro.schedules.verify import ALL_RULES, verify_schedule

    known = tuple(ALL_RULES)
    if args.capacity:
        known += tuple(CAPACITY_RULES)
    rules, error = _selected_rules(args, known)
    if error:
        print(error)
        return 2
    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    verify_rules = (
        None if rules is None else [r for r in rules if r in ALL_RULES]
    )
    report = verify_schedule(schedule, method=args.method, rules=verify_rules)
    if args.capacity:
        _merge_capacity_findings(report, schedule, rules)
    return _emit_reports([report], args)


def _cmd_check_model(args: argparse.Namespace) -> int:
    from repro.analysis import MODEL_RULES, analyze_spec
    from repro.analysis.capacity import CAPACITY_RULES
    from repro.model import get_model
    from repro.model.spec import tiny_spec

    known = tuple(MODEL_RULES)
    if args.capacity:
        known += tuple(CAPACITY_RULES)
    rules, error = _selected_rules(args, known)
    if error:
        print(error)
        return 2
    if args.model == "tiny":
        # Enough decoder layers that embedding + head balance against
        # them under any p×v chunking the flags (or the grid's v=2
        # entries) request — the Section 7.1 layout.
        v = max(args.virtual, 2)
        spec = tiny_spec(num_layers=args.stages * v - 2)
    else:
        spec = get_model(args.model)

    if args.method == "grid":
        # The E0 acceptance grid: every scheduling method in its
        # reference configuration.
        from repro.experiments.e0 import METHOD_SETUPS

        setups = [
            (method, dict(kwargs)) for method, kwargs in METHOD_SETUPS
        ]
    else:
        setups = [(args.method, {})]

    model_rules = (
        None if rules is None else [r for r in rules if r in MODEL_RULES]
    )
    reports = []
    for method, overrides in setups:
        schedule, status = _build_for_cli(args, method, **overrides)
        if schedule is None:
            assert status is not None
            return status
        report = analyze_spec(spec, schedule, rules=model_rules)
        if args.capacity:
            _merge_capacity_findings(report, schedule, rules)
        reports.append(report)
    return _emit_reports(reports, args)


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.hardware import get_cluster
    from repro.model import get_model
    from repro.planner import SweepCache, search_method
    from repro.schedules import gencache

    if args.no_gen_cache:
        gencache.set_enabled(False)
    spec = get_model(args.model)
    cluster = get_cluster(args.cluster)
    cache = None if args.no_cache else SweepCache()
    for method in args.methods.split(","):
        result = search_method(
            method, spec, cluster, args.gbs, jobs=args.jobs, cache=cache
        )
        if result.best is None:
            print(f"{method:9s} OOM in every configuration")
        else:
            print(f"{method:9s} {result.best.describe()}")
        if args.show_skipped:
            for skip in result.skipped:
                print(f"  skipped {skip.config.describe()}: {skip.reason}")
    if cache is not None and (cache.hits or cache.misses):
        print(f"sweep cache: {cache.hits} hits, {cache.misses} misses")
    gen_stats = gencache.stats()
    if gen_stats["hits"] or gen_stats["misses"]:
        print(
            f"gen cache: {gen_stats['hits']} hits, "
            f"{gen_stats['misses']} misses, {gen_stats['size']} resident"
        )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.analysis.evaluate import (
        evaluate_schedule,
        iteration_time_bounds,
    )
    from repro.sim import UniformCost

    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    cost = UniformCost(schedule.problem, tw=args.tw)
    evaluation = evaluate_schedule(schedule, cost)
    bounds = iteration_time_bounds(schedule.problem, cost)
    if args.check:
        from repro.sim.crossval import cross_validate

        report = cross_validate(
            schedule, cost, evaluation=evaluation, bounds=bounds
        )
        return _emit_reports([report], args)
    if args.json or args.format == "json":
        payload = evaluation.to_dict()
        if bounds is not None:
            payload["build_free_bounds"] = {
                "lower_s": bounds.lower,
                "upper_s": bounds.upper,
            }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(evaluation.render_text())
        if bounds is not None:
            print(
                f"build-free bounds: [{bounds.lower:.6g}, "
                f"{bounds.upper:.6g}] s"
            )
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.analysis.capacity import (
        CAPACITY_RULES,
        certify_capacities,
        check_capacities,
        cross_validate_capacities,
        infer_capacities,
    )
    from repro.schedules import ScheduleError
    from repro.schedules.verify.diagnostics import Report
    from repro.sim import UniformCost

    rules, error = _selected_rules(args, CAPACITY_RULES)
    if error:
        print(error)
        return 2
    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    cost = UniformCost(schedule.problem, tw=args.tw)
    try:
        plan = infer_capacities(schedule, cost)
    except ScheduleError as exc:
        print(exc)
        return 1
    certificate = None
    if args.check:
        certificate = certify_capacities(schedule, cost, mode=args.mode)
        report = cross_validate_capacities(schedule, cost, certificate)
    else:
        report = check_capacities(
            schedule, capacities=plan.capacities(args.mode), cost=cost
        )
    if rules is not None:
        report = Report(
            schedule_name=report.schedule_name,
            findings=[f for f in report.findings if f.rule_id in rules],
            checked_rules=tuple(
                r for r in report.checked_rules if r in rules
            ),
        )
    if args.json or args.format == "json":
        payload = plan.to_dict()
        payload["mode"] = args.mode
        payload["report"] = report.to_dict()
        if certificate is not None:
            payload["certificate"] = certificate.to_dict()
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"capacity plan for {schedule.name} (mode: {args.mode}):")
        for channel in plan.channels:
            print(f"  {channel.describe()}")
        if plan.unbounded_makespan is not None:
            print(f"  unbounded makespan: {plan.unbounded_makespan:.6g}")
        if certificate is not None:
            state = (
                "backpressure-free"
                if certificate.backpressure_free
                else "backpressured"
            )
            print(
                f"  certificate: makespan {certificate.makespan:.6g} "
                f"({state}), cross-validated against the bounded simulator"
            )
        print()
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.record import record_iteration
    from repro.obs.sinks import ChromeTraceSink

    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    executor = "parallel" if args.substrate == "parallel" else "serial"
    sim_result, run_result = _run_both_substrates(args, schedule, executor=executor)
    sink = ChromeTraceSink(
        args.out,
        other_data={
            "schedule": schedule.name,
            "sim_bubble_ratio": round(sim_result.bubble_ratio, 6),
            "runtime_bubble_ratio": round(run_result.bubble_ratio, 6),
        },
    )
    with sink:
        if args.substrate in ("both", "sim", "parallel"):
            record_iteration(sim_result, sink, pid=0, process="simulated")
        if args.substrate in ("both", "runtime"):
            record_iteration(run_result, sink, pid=1, process="executed")
        if args.substrate == "parallel":
            # The measured multi-process iteration renders alongside the
            # simulated one — same viewer schema, its own process group.
            record_iteration(run_result, sink, pid=2, process="parallel")
    print(f"chrome trace written to {args.out} (open in ui.perfetto.dev)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    schedule, status = _build_for_cli(args, args.method)
    if schedule is None:
        assert status is not None
        return status
    sim_result, run_result = _run_both_substrates(args, schedule)
    sim_metrics = sim_result.metrics()
    run_metrics = run_result.metrics()
    if args.json or args.format == "json":
        print(_json.dumps(
            {"sim": sim_metrics.to_dict(), "runtime": run_metrics.to_dict()},
            indent=2, sort_keys=True,
        ))
    else:
        print(sim_metrics.render_text())
        print()
        print(run_metrics.render_text())
    return 0


# ----------------------------------------------------------------------
# Per-command flag setup
# ----------------------------------------------------------------------
def _configure_experiment(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("id", help="experiment id, or 'list'")
    _sweep_flags(parser, jobs_default=None)


def _configure_schedule(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--width", type=int, default=120)
    parser.add_argument("--memory", action="store_true",
                        help="also render stage 0's activation profile")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome/Perfetto trace JSON")


def _configure_verify(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    _report_flags(parser)
    parser.add_argument("--capacity", action="store_true",
                        help="also certify bounded-channel deadlock freedom "
                             "at the inferred minimal ring sizes (CP rules)")


def _configure_check_model(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "method", help="scheduling method, or 'grid' for the E0 acceptance grid"
    )
    parser.add_argument("--model", default="tiny",
                        help="model spec: tiny / 7b / 13b / 34b")
    _shape_flags(parser)
    _report_flags(parser)
    parser.add_argument("--capacity", action="store_true",
                        help="fold the bounded-channel CP rule family into "
                             "each report")


def _configure_capacity(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    _report_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--mode",
                        choices=("deadlock-free", "backpressure-free", "full"),
                        default="backpressure-free",
                        help="which inferred capacity vector to certify")
    parser.add_argument("--check", action="store_true",
                        help="cross-validate the certificate against the "
                             "bounded-channel event simulator (CP004)")


def _configure_plan(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", help="7b / 13b / 34b")
    parser.add_argument("gbs", type=int)
    parser.add_argument("--cluster", default="rtx4090-64")
    parser.add_argument("--methods", default="dapple,vpp,zb,zbv,mepipe")
    _sweep_flags(parser, jobs_default=1)
    parser.add_argument("--show-skipped", action="store_true",
                        help="print every pruned/rejected config with reason")


def _configure_evaluate(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--check", action="store_true",
                        help="cross-validate the evaluation against the "
                             "event simulator (EV rules)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")


def _configure_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--out", metavar="FILE", default="trace.json",
                        help="output trace path")
    parser.add_argument("--substrate",
                        choices=("both", "sim", "runtime", "parallel"),
                        default="both",
                        help="which substrate(s) to record")


def _configure_report(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("method")
    _shape_flags(parser)
    parser.add_argument("--tw", type=float, default=1.0,
                        help="weight-gradient time (split methods)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="metrics output format")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")


#: Every CLI command, declaratively.  ``build_parser`` materializes the
#: argparse tree from this table.
SUBCOMMANDS: tuple[Subcommand, ...] = (
    Subcommand("experiment", "regenerate a paper artifact",
               _configure_experiment, _cmd_experiment),
    Subcommand("schedule", "render a schedule timeline",
               _configure_schedule, _cmd_schedule),
    Subcommand("verify", "statically verify a generated schedule",
               _configure_verify, _cmd_verify),
    Subcommand("check-model",
               "statically analyze the (model partition, schedule) pair",
               _configure_check_model, _cmd_check_model),
    Subcommand("plan", "grid-search parallel strategies",
               _configure_plan, _cmd_plan),
    Subcommand("evaluate",
               "analytically evaluate a schedule (certified closed forms)",
               _configure_evaluate, _cmd_evaluate),
    Subcommand("capacity",
               "infer and certify bounded-channel ring capacities (CP rules)",
               _configure_capacity, _cmd_capacity),
    Subcommand("trace",
               "export a combined sim + runtime Chrome/Perfetto trace",
               _configure_trace, _cmd_trace),
    Subcommand("report",
               "print uniform iteration metrics from both substrates",
               _configure_report, _cmd_report),
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="mepipe", description="MEPipe reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command in SUBCOMMANDS:
        sub_parser = sub.add_parser(command.name, help=command.help)
        command.configure(sub_parser)
        sub_parser.set_defaults(func=command.run)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
