"""Checkpointing for the NumPy training substrate.

Supports the Section 9 fault-tolerance story end to end: in-memory
(GEMINI-style) and on-disk checkpoints of model parameters plus Adam
state, and a fault-injecting training driver that proves training
recovers to the exact trajectory.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.nn.adam import Adam
from repro.nn.model import TransformerModel


@dataclass
class Checkpoint:
    """A full training-state snapshot."""

    step: int
    params: dict[str, np.ndarray]
    adam_m: dict[str, np.ndarray]
    adam_v: dict[str, np.ndarray]
    adam_step: int


def take_checkpoint(model: TransformerModel, optimizer: Adam, step: int) -> Checkpoint:
    """Deep-copy the training state (an in-memory checkpoint)."""
    return Checkpoint(
        step=step,
        params={k: v.copy() for k, v in model.named_params().items()},
        adam_m={k: v.copy() for k, v in optimizer.m.items()},
        adam_v={k: v.copy() for k, v in optimizer.v.items()},
        adam_step=optimizer.step_count,
    )


def restore_checkpoint(
    model: TransformerModel, optimizer: Adam, checkpoint: Checkpoint
) -> int:
    """Load a snapshot back into the live objects; returns the step."""
    for key, value in model.named_params().items():
        value[...] = checkpoint.params[key]
    for key in optimizer.m:
        optimizer.m[key][...] = checkpoint.adam_m[key]
        optimizer.v[key][...] = checkpoint.adam_v[key]
    optimizer.step_count = checkpoint.adam_step
    model.init_grads()
    return checkpoint.step


def save_checkpoint(checkpoint: Checkpoint, path: str | Path) -> None:
    """Persist a snapshot as a single ``.npz`` file."""
    arrays: dict[str, np.ndarray] = {
        "_meta": np.array([checkpoint.step, checkpoint.adam_step])
    }
    for prefix, table in (
        ("p", checkpoint.params),
        ("m", checkpoint.adam_m),
        ("v", checkpoint.adam_v),
    ):
        for key, value in table.items():
            arrays[f"{prefix}:{key}"] = value
    np.savez(path, **arrays)


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load a snapshot written by :func:`save_checkpoint`."""
    data = np.load(path)
    step, adam_step = (int(x) for x in data["_meta"])
    tables: dict[str, dict[str, np.ndarray]] = {"p": {}, "m": {}, "v": {}}
    for name in data.files:
        if name == "_meta":
            continue
        prefix, key = name.split(":", 1)
        tables[prefix][key] = data[name]
    return Checkpoint(
        step=step,
        params=tables["p"],
        adam_m=tables["m"],
        adam_v=tables["v"],
        adam_step=adam_step,
    )


class InjectedFault(RuntimeError):
    """A simulated hardware failure during training."""


@dataclass
class FaultInjector:
    """Raises :class:`InjectedFault` at the configured steps (once each)."""

    fail_at_steps: set[int] = field(default_factory=set)
    _fired: set[int] = field(default_factory=set)

    def check(self, step: int) -> None:
        if step in self.fail_at_steps and step not in self._fired:
            self._fired.add(step)
            raise InjectedFault(f"simulated device failure at step {step}")


@dataclass
class TrainingDriver:
    """A fault-tolerant training loop over any step function.

    ``step_fn(model) -> loss`` must accumulate gradients into the model
    (e.g. a closure over :class:`repro.pipeline.PipelineRuntime`); the
    driver owns the optimizer, checkpointing cadence, and recovery.
    """

    model: TransformerModel
    optimizer: Adam
    checkpoint_interval: int = 5
    injector: FaultInjector | None = None

    def __post_init__(self) -> None:
        self._latest = take_checkpoint(self.model, self.optimizer, step=0)
        self.recoveries = 0
        self.losses: list[float] = []

    def run(self, step_fn, steps: int) -> list[float]:
        """Train ``steps`` steps, recovering from injected faults."""
        step = 0
        while step < steps:
            try:
                if self.injector is not None:
                    self.injector.check(step)
                loss = step_fn(self.model)
                self.optimizer.step()
                step += 1
                self.losses.append(loss)
                if step % self.checkpoint_interval == 0:
                    self._latest = take_checkpoint(
                        self.model, self.optimizer, step)
            except InjectedFault:
                step = restore_checkpoint(
                    self.model, self.optimizer, self._latest)
                del self.losses[step:]
                self.recoveries += 1
        return self.losses
