"""Hardware-failure cost model (Section 9, first discussion point).

The paper estimates that with memory-based checkpointing recovering in
minutes, hardware failures cost less than 5% of the throughput of a
thousand-RTX-4090 cluster, extrapolating from the OPT logbook's ~12 h
MTBF for a thousand A100s.  This module implements the standard
Young/Daly analysis those estimates rest on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ReliabilityModel:
    """Failure/recovery characteristics of a training cluster.

    Attributes:
        cluster_mtbf_hours: Mean time between failures of the *whole*
            job (any participating device failing stops the iteration).
        checkpoint_seconds: Time to take one checkpoint.
        recovery_seconds: Time from failure to resumed training
            (detection, reschedule, state restore).
    """

    cluster_mtbf_hours: float
    checkpoint_seconds: float
    recovery_seconds: float

    @property
    def mtbf_seconds(self) -> float:
        return self.cluster_mtbf_hours * 3600.0

    def optimal_checkpoint_interval(self) -> float:
        """Young's approximation: ``sqrt(2 * C * MTBF)`` seconds."""
        return math.sqrt(2.0 * self.checkpoint_seconds * self.mtbf_seconds)

    def overhead_fraction(self, interval_seconds: float | None = None) -> float:
        """Expected throughput loss from checkpoints, rework, recovery.

        Per failure the job loses on average half a checkpoint interval
        of work plus the recovery time; between failures it pays one
        checkpoint per interval.
        """
        tau = interval_seconds or self.optimal_checkpoint_interval()
        checkpoint_cost = self.checkpoint_seconds / tau
        per_failure = tau / 2.0 + self.recovery_seconds
        failure_cost = per_failure / self.mtbf_seconds
        return checkpoint_cost + failure_cost


def scaled_mtbf(reference_hours: float, reference_gpus: int, gpus: int) -> float:
    """Scale a measured MTBF to another cluster size (independent
    failures: MTBF is inversely proportional to device count)."""
    return reference_hours * reference_gpus / gpus


#: OPT-175B logbook: roughly 12 hours between failures on ~1000 A100s.
OPT_MTBF_HOURS = 12.0
OPT_GPUS = 1000


def rtx4090_thousand_gpu_model(
    checkpoint_seconds: float = 20.0,
    recovery_seconds: float = 120.0,
    failure_rate_multiplier: float = 2.0,
) -> ReliabilityModel:
    """The paper's Section 9 scenario: a thousand RTX 4090s.

    Consumer parts are assumed to fail ``failure_rate_multiplier`` times
    as often as A100s; memory-based checkpointing (MegaScale/GEMINI,
    the papers Section 9 cites) keeps checkpoints in seconds and
    "reduces the fault recovery time to a few minutes".
    """
    mtbf = scaled_mtbf(OPT_MTBF_HOURS, OPT_GPUS, 1000) / failure_rate_multiplier
    return ReliabilityModel(
        cluster_mtbf_hours=mtbf,
        checkpoint_seconds=checkpoint_seconds,
        recovery_seconds=recovery_seconds,
    )
