"""Fault tolerance: checkpointing, fault injection, MTBF cost model."""

from repro.reliability.checkpoint import (
    Checkpoint,
    FaultInjector,
    InjectedFault,
    TrainingDriver,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
    take_checkpoint,
)
from repro.reliability.mtbf import (
    OPT_GPUS,
    OPT_MTBF_HOURS,
    ReliabilityModel,
    rtx4090_thousand_gpu_model,
    scaled_mtbf,
)

__all__ = [
    "Checkpoint",
    "FaultInjector",
    "InjectedFault",
    "OPT_GPUS",
    "OPT_MTBF_HOURS",
    "ReliabilityModel",
    "TrainingDriver",
    "load_checkpoint",
    "restore_checkpoint",
    "rtx4090_thousand_gpu_model",
    "save_checkpoint",
    "scaled_mtbf",
    "take_checkpoint",
]
