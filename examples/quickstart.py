#!/usr/bin/env python3
"""Quickstart: generate, inspect, and evaluate MEPipe schedules.

Walks the three layers of the library in ~40 lines:

1. generate a slice-level SVPP schedule and look at its timeline;
2. compare its bubble/memory against the classic baselines;
3. evaluate the full MEPipe system (schedule + cost model) for Llama
   13B on the paper's 64x RTX 4090 cluster.

Run:  python examples/quickstart.py
"""

from repro import LLAMA_13B, RTX4090_CLUSTER, ParallelConfig
from repro.planner import evaluate_config
from repro.schedules import analyze, build_problem, build_schedule
from repro.sim import UniformCost, simulate
from repro.viz import render_timeline


def main() -> None:
    # 1. A slice-level schedule: 4 stages, 4 micro-batches, 2 slices
    #    per sample (the Figure 4(a) setup).
    problem = build_problem("svpp", 4, 4, num_slices=2)
    schedule = build_schedule("svpp", problem)
    result = simulate(schedule, UniformCost(problem, tb=1.0))
    print("SVPP schedule (Figure 4(a) shape):")
    print(render_timeline(result, width=100))
    print()

    # 2. Where does it sit against the baselines?
    print(f"{'method':10s} {'bubble':>8s} {'peak activations':>18s}")
    for method, kwargs in [
        ("gpipe", {}),
        ("dapple", {}),
        ("terapipe", {"num_slices": 2}),
        ("svpp", {"num_slices": 2}),
    ]:
        pr = build_problem(method, 4, 4, **kwargs)
        res = simulate(build_schedule(method, pr), UniformCost(pr))
        print(f"{method:10s} {res.bubble_ratio:8.1%} "
              f"{res.peak_activation_units:15.3f} A")
    print()
    print("closed form (Table 3):", analyze("svpp", 4, 4, s=2))
    print()

    # 3. Full-system evaluation: Llama 13B on 64x RTX 4090 with the
    #    paper's optimal MEPipe strategy (PP=8, SPP=4).
    config = ParallelConfig(dp=8, pp=8, spp=4)
    outcome = evaluate_config(
        "mepipe", LLAMA_13B, RTX4090_CLUSTER, config, global_batch_size=128
    )
    print("Llama 13B, GBS 128, 64x RTX 4090:")
    print(f"  iteration time : {outcome.iteration_time_s * 1e3:8.1f} ms")
    print(f"  throughput     : {outcome.tflops_per_gpu:8.1f} TFLOPS/GPU")
    print(f"  MFU            : {outcome.mfu:8.1%}   (paper: ~35%)")
    print(f"  peak memory    : {outcome.peak_memory_gib:8.1f} GiB of 24 GiB")


if __name__ == "__main__":
    main()
