#!/usr/bin/env python3
"""Plan the training of a Llama model on a budget cluster.

The Section 4.5 / 7.3 workflow as a tool: given a model, a cluster,
and a global batch size, grid-search each scheduling method's strategy
space, report the winner, and show the memory breakdown that explains
which configurations OOM.

Run:  python examples/plan_cluster.py [13b] [64]
"""

import sys

from repro.hardware import RTX4090_CLUSTER
from repro.model import GiB, budget_for, get_model
from repro.planner import search_method

METHODS = ["dapple", "vpp", "zb", "zbv", "mepipe"]


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "13b"
    gbs = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    spec = get_model(model_name)
    cluster = RTX4090_CLUSTER
    print(f"planning {spec.name} at GBS {gbs} on {cluster.num_devices}x "
          f"{cluster.gpu.name} ({cluster.gpu.memory_bytes // GiB} GB each)\n")

    print(f"{'method':9s} {'best config':36s} {'iteration':>11s} "
          f"{'bubble':>7s} {'memory':>10s}")
    winners = {}
    for method in METHODS:
        result = search_method(method, spec, cluster, gbs)
        if result.best is None:
            print(f"{method:9s} every configuration OOMs "
                  f"({len(result.evaluated)} tried)")
            continue
        best = result.best
        winners[method] = best
        print(f"{method:9s} {best.config.describe():36s} "
              f"{best.iteration_time_s * 1e3:9.1f}ms {best.bubble_ratio:7.1%} "
              f"{best.peak_memory_gib:7.1f}GiB")

    if "mepipe" in winners and len(winners) > 1:
        best_baseline = min(
            (r.iteration_time_s, m) for m, r in winners.items() if m != "mepipe")
        speedup = best_baseline[0] / winners["mepipe"].iteration_time_s
        print(f"\nMEPipe speedup over {best_baseline[1]}: {speedup:.2f}x")

    # Memory breakdown for the MEPipe winner (the Section 4.5 model).
    if "mepipe" in winners:
        cfg = winners["mepipe"].config
        budget = budget_for(
            spec,
            capacity_bytes=cluster.gpu.memory_bytes,
            pipeline_stages=cfg.pp,
            total_devices=cluster.num_devices,
            micro_batch_tokens=spec.seq_length // cfg.spp,
        )
        print("\nmemory breakdown per device (MEPipe winner):")
        print(f"  static (params+grads+ZeRO optimizer): "
              f"{budget.static / GiB:6.2f} GiB")
        print(f"  temporary buffers                   : "
              f"{budget.temporary / GiB:6.2f} GiB")
        print(f"  allocator reserve + framework       : "
              f"{(budget.allocator_reserve + budget.framework_overhead) / GiB:6.2f} GiB")
        print(f"  left for activations                : "
              f"{budget.available_for_activations / GiB:6.2f} GiB")
        print(f"  activations used by the schedule    : "
              f"{winners['mepipe'].activation_bytes / GiB:6.2f} GiB "
              f"(f={winners['mepipe'].forwards_before_first_backward or 'max'})")


if __name__ == "__main__":
    main()
