#!/usr/bin/env python3
"""Fault-tolerant pipelined training (the Section 9 reliability story).

Trains a mini-Llama under the MEPipe schedule while a fault injector
kills the job twice; in-memory checkpoints (GEMINI-style) bring it back,
and the final model is bit-identical to an uninterrupted run.  Also
prints the cluster-scale failure-cost estimates behind the paper's
"less than 5%" claim.

Run:  python examples/fault_tolerant_training.py
"""

import numpy as np

from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import Adam, build_model
from repro.pipeline import PipelineRuntime
from repro.reliability import (
    FaultInjector,
    TrainingDriver,
    rtx4090_thousand_gpu_model,
)
from repro.schedules import build_problem, build_schedule

STEPS = 12


def main() -> None:
    spec = tiny_spec(hidden_size=32, num_layers=6, num_heads=4,
                     ffn_hidden_size=64, vocab_size=53, seq_length=16)
    tokens, targets = token_batches(spec.vocab_size, 4, 2, spec.seq_length,
                                    seed=1)
    problem = build_problem("mepipe", 4, 4, num_slices=2, wgrad_gemms=2)
    schedule = build_schedule("mepipe", problem)

    def make_driver(injector=None):
        model = build_model(spec, seed=9)
        runtime = PipelineRuntime(model, tokens, targets)
        driver = TrainingDriver(model, Adam(model, lr=2e-3),
                                checkpoint_interval=3, injector=injector)
        return model, driver, lambda m: runtime.run(schedule).loss

    print(f"training {STEPS} steps with failures injected at steps 4 and 9")
    model_f, faulty, step_f = make_driver(FaultInjector(fail_at_steps={4, 9}))
    losses_f = faulty.run(step_f, STEPS)
    print(f"  recoveries: {faulty.recoveries}, final loss {losses_f[-1]:.4f}")

    model_c, clean, step_c = make_driver()
    losses_c = clean.run(step_c, STEPS)
    delta = max(float(np.abs(p - model_c.named_params()[k]).max())
                for k, p in model_f.named_params().items())
    print(f"  clean-run final loss {losses_c[-1]:.4f}; "
          f"max parameter delta vs faulty run: {delta:.2e}")

    print("\ncluster-scale failure cost (1000x RTX 4090, OPT-logbook MTBF):")
    model = rtx4090_thousand_gpu_model()
    print(f"  cluster MTBF            : {model.cluster_mtbf_hours:.1f} h")
    print(f"  optimal ckpt interval   : "
          f"{model.optimal_checkpoint_interval() / 60:.1f} min")
    print(f"  expected throughput loss: {model.overhead_fraction():.1%} "
          f"(paper estimate: <5%)")


if __name__ == "__main__":
    main()
