#!/usr/bin/env python3
"""Train a miniature Llama with MEPipe scheduling, numerically.

This is the artifact's "functionality" story (E0) as a runnable demo:
a 4-stage pipeline executes the full MEPipe schedule — slice-level
1F1B with deferred, fine-grained weight-gradient GEMMs — on a real
(NumPy) transformer, and the loss trajectory is bit-identical to
sequential single-process training.

Run:  python examples/train_tiny_llama.py
"""

import numpy as np

from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import Adam, build_model, sequential_step
from repro.pipeline import PipelineRuntime
from repro.schedules import build_problem, build_schedule

STEPS = 10
STAGES = 4
MICROBATCHES = 4


def main() -> None:
    spec = tiny_spec(hidden_size=48, num_layers=6, num_heads=4,
                     ffn_hidden_size=96, vocab_size=101, seq_length=24)
    tokens, targets = token_batches(
        spec.vocab_size, MICROBATCHES, batch_size=2,
        seq_length=spec.seq_length, seed=3)

    problem = build_problem(
        "mepipe", STAGES, MICROBATCHES, num_slices=4, wgrad_gemms=3)
    schedule = build_schedule("mepipe", problem)
    print(f"schedule: {schedule.name}, {schedule.op_count()} ops over "
          f"{STAGES} stages ({problem.num_slices} slices/sample, "
          f"{problem.wgrad_gemms} W-GEMM groups)")

    pipelined = build_model(spec, seed=42)
    runtime = PipelineRuntime(pipelined, tokens, targets)
    optimizer = Adam(pipelined, lr=3e-3)

    reference = build_model(spec, seed=42)
    ref_optimizer = Adam(reference, lr=3e-3)

    print(f"{'step':>4s} {'pipelined loss':>15s} {'sequential loss':>16s} "
          f"{'max param delta':>16s}")
    for step in range(STEPS):
        result = runtime.run(schedule)
        optimizer.step()
        ref_loss = sequential_step(reference, tokens, targets)
        ref_optimizer.step()
        delta = max(
            float(np.abs(p - reference.named_params()[k]).max())
            for k, p in pipelined.named_params().items()
        )
        print(f"{step:4d} {result.loss:15.6f} {ref_loss:16.6f} {delta:16.2e}")

    print()
    stats = runtime.run(schedule).stage_stats
    print("peak live slice-contexts per stage:",
          [s.peak_live_contexts for s in stats])
    print("(TeraPipe would pin", MICROBATCHES * problem.num_slices * 2,
          "contexts on every stage)")


if __name__ == "__main__":
    main()
