#!/usr/bin/env python3
"""Fine-grained weight gradients under long-context slice imbalance.

Section 5: with causal attention, later slices of a sample attend to
more keys, so their forward/backward ops grow while weight-gradient
GEMMs stay flat.  The longer the context, the larger the imbalance —
and the more MEPipe gains by draining W GEMMs into the gaps.  This
example sweeps the context length for Llama 13B and reports the
iteration-time improvement from dynamic W scheduling at each point.

Run:  python examples/long_context_finegrained.py
"""

from dataclasses import replace

from repro import LLAMA_13B, RTX4090_CLUSTER, ParallelConfig
from repro.experiments.fig1112 import compute
from repro.model import attention_score_share


def main() -> None:
    print(f"{'context':>8s} {'attn share':>11s} {'w/o fine W':>11s} "
          f"{'with fine W':>12s} {'gain':>7s}")
    for seq in (4096, 8192, 16384, 32768):
        spec = replace(LLAMA_13B, seq_length=seq)
        slices = max(4, seq // 2048)
        config = ParallelConfig(dp=8, pp=8, spp=slices)
        ablation = compute(spec, RTX4090_CLUSTER, config=config, gbs=64,
                           wgrad_gemms=4)
        share = attention_score_share(spec)
        t_without = ablation.without_fine_grained.iteration_time * 1e3
        t_with = ablation.with_fine_grained.iteration_time * 1e3
        print(f"{seq:8d} {share:11.1%} {t_without:9.0f}ms {t_with:10.0f}ms "
              f"{ablation.improvement:7.1%}")
    print()
    print("the technique's benefit tracks the attention-score share — the")
    print("source of the slice imbalance it absorbs (paper Section 5).")


if __name__ == "__main__":
    main()
