#!/usr/bin/env python3
"""Gallery of pipeline schedules as ASCII timelines (Figures 2-7).

Renders GPipe, DAPPLE 1F1B, interleaved VPP, TeraPipe, ZB-1P, SVPP
(with two f variants), and full MEPipe on the same 4-stage,
4-micro-batch problem, so their structure — and MEPipe's memory
behaviour — can be compared at a glance.

Run:  python examples/schedule_gallery.py
"""

from repro.schedules import build_problem, build_schedule, svpp_variants
from repro.sim import UniformCost, simulate
from repro.viz import render_memory_profile, render_timeline

P, N = 4, 4
WIDTH = 110


def show(title: str, method: str, tw: float = 0.0, f=None, **kwargs) -> None:
    problem = build_problem(method, P, N, **kwargs)
    schedule = build_schedule(
        method, problem, forwards_before_first_backward=f)
    result = simulate(schedule, UniformCost(problem, tb=1.0, tw=tw))
    print(f"--- {title} ---")
    print(render_timeline(result, width=WIDTH))
    print()


def main() -> None:
    print("digits = forward (micro-batch id), letters = backward, "
          "w = weight-gradient GEMM, . = bubble\n")
    show("GPipe: all forwards, then all backwards", "gpipe")
    show("DAPPLE 1F1B (Figure 2)", "dapple")
    show("Interleaved VPP, v=2", "vpp", virtual_size=2)
    show("TeraPipe, s=4 slices (Figure 3)", "terapipe", num_slices=4)
    show("ZB-1P: split backward, W fills the drain", "zb", tw=1.0)
    show("SVPP s=2 (Figure 4(a))", "svpp", num_slices=2)
    show("SVPP s=2, v=2 (Figure 4(b))", "svpp", num_slices=2, virtual_size=2)

    # The Figure 5 variants: trade memory for bubbles via f.
    problem = build_problem("svpp", P, 2, num_slices=2, virtual_size=2)
    fs = svpp_variants(problem)
    for f in (fs[0], fs[len(fs) // 2], fs[-1]):
        show(f"SVPP variant f={f} (Figure 5)", "svpp",
             f=f, num_slices=2, virtual_size=2)

    show("MEPipe: SVPP + fine-grained W (Figure 7)", "mepipe",
         tw=0.8, num_slices=2, wgrad_gemms=4)

    # Stage 0's activation footprint over time: the Figure 4(a)
    # arithmetic (peak 5/8 A) as a picture.
    problem = build_problem("svpp", P, N, num_slices=2)
    result = simulate(build_schedule("svpp", problem),
                      UniformCost(problem, tb=1.0))
    print("--- SVPP stage-0 activation memory over time ---")
    print(render_memory_profile(result, stage=0, width=WIDTH, height=8))

    diagnose_corrupted_schedule()


def diagnose_corrupted_schedule() -> None:
    """What the static verifier reports on a deliberately broken schedule.

    Swapping a backward in front of its own forward on the last stage
    deadlocks the schedule: the verifier names the rule, shows where
    each stage wedges, and prints the minimal blocking cycle that
    proves it (docs/verification.md).
    """
    from repro.schedules import OpId, OpKind, verify_schedule

    problem = build_problem("dapple", P, N)
    schedule = build_schedule("dapple", problem)
    last = schedule.programs[-1].ops
    fwd = OpId(OpKind.F, 0, 0, P - 1)
    bwd = OpId(OpKind.B, 0, 0, P - 1)
    i, j = last.index(fwd), last.index(bwd)
    last[i], last[j] = last[j], last[i]

    print()
    print("--- the static verifier on a corrupted schedule ---")
    print(f"(swapped {fwd} and {bwd} on stage {P - 1}; "
          "try `python -m repro verify <method>` on a real one)\n")
    print(verify_schedule(schedule, method="dapple").render_text())


if __name__ == "__main__":
    main()
