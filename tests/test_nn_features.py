"""Tests for GQA and activation recomputation in the NumPy substrate."""

import numpy as np
import pytest

from repro.data import token_batches
from repro.model import ModelSpec, tiny_spec
from repro.nn import build_model, sequential_step

GQA_SPEC = ModelSpec(name="gqa-tiny", hidden_size=32, num_layers=3,
                     num_heads=8, num_kv_heads=2, ffn_hidden_size=64,
                     vocab_size=29, seq_length=12)
MHA_SPEC = tiny_spec(hidden_size=32, num_layers=3, num_heads=4,
                     ffn_hidden_size=64, vocab_size=29, seq_length=12)


def data(spec, n=2, b=2, seed=4):
    return token_batches(spec.vocab_size, n, b, spec.seq_length, seed=seed)


class TestGQA:
    def test_finite_difference_gradients(self):
        """GQA's grouped K/V backward (sum over query groups) is exact."""
        tokens, targets = data(GQA_SPEC)
        model = build_model(GQA_SPEC, seed=2)
        sequential_step(model, tokens, targets)
        grads = {k: v.copy() for k, v in model.named_grads().items()}
        eps = 1e-6
        rng = np.random.default_rng(0)
        for key in ("1.wk", "1.wv", "2.wq"):
            probe = build_model(GQA_SPEC, seed=2)
            p = probe.named_params()[key]
            idx = tuple(rng.integers(0, d) for d in p.shape)
            p[idx] += eps
            up = sequential_step(probe, tokens, targets)
            probe2 = build_model(GQA_SPEC, seed=2)
            probe2.named_params()[key][idx] -= eps
            down = sequential_step(probe2, tokens, targets)
            fd = (up - down) / (2 * eps)
            assert fd == pytest.approx(grads[key][idx], rel=1e-4, abs=1e-9), key

    def test_slice_invariance_with_gqa(self):
        """Slice-level execution stays exact under grouped KV heads."""
        tokens, targets = data(GQA_SPEC)
        ref = build_model(GQA_SPEC, seed=2)
        sequential_step(ref, tokens, targets, num_slices=1)
        sliced = build_model(GQA_SPEC, seed=2)
        sequential_step(sliced, tokens, targets, num_slices=4)
        for key, grad in sliced.named_grads().items():
            assert np.allclose(grad, ref.named_grads()[key], atol=1e-13), key

    def test_gqa_pipeline_execution(self):
        """GQA model through the full pipeline runtime (34B's geometry)."""
        from repro.pipeline import PipelineRuntime
        from repro.schedules import build_problem, build_schedule

        tokens, targets = data(GQA_SPEC, n=2)
        ref = build_model(GQA_SPEC, seed=5)
        ref_loss = sequential_step(ref, tokens, targets)
        problem = build_problem("svpp", 2, 2, num_slices=2)
        schedule = build_schedule("svpp", problem)
        model = build_model(GQA_SPEC, seed=5)
        result = PipelineRuntime(model, tokens, targets).run(schedule)
        assert result.loss == pytest.approx(ref_loss, abs=1e-12)
        for key, grad in model.named_grads().items():
            assert np.allclose(grad, ref.named_grads()[key], atol=1e-12)


class TestRecomputation:
    def test_gradients_identical(self):
        """Replaying the forward is numerically free of error."""
        tokens, targets = data(MHA_SPEC)
        ref = build_model(MHA_SPEC, seed=3)
        ref_loss = sequential_step(ref, tokens, targets)
        rc = build_model(MHA_SPEC, seed=3, recompute=True)
        rc_loss = sequential_step(rc, tokens, targets)
        assert rc_loss == pytest.approx(ref_loss, abs=1e-12)
        for key, grad in rc.named_grads().items():
            assert np.allclose(grad, ref.named_grads()[key], atol=1e-12), key

    def test_live_bytes_reduced_about_90pct(self):
        """Section 7.3: recomputation cuts activation memory ~90%."""
        tokens, targets = data(MHA_SPEC, n=1)
        t = MHA_SPEC.seq_length

        def peak_after_forward(recompute):
            model = build_model(MHA_SPEC, seed=1, recompute=recompute)
            model.head.loss_scale = 1.0 / tokens.size
            model.head.set_targets(0, 0, targets[0])
            x = tokens[0]
            for comp in model.components:
                x = comp.forward(0, 0, x)
            return model.live_bytes()

        full = peak_after_forward(False)
        lean = peak_after_forward(True)
        assert lean < 0.25 * full  # layers shrink ~90%; head/embed remain

    def test_recompute_rejects_slices(self):
        tokens, targets = data(MHA_SPEC)
        model = build_model(MHA_SPEC, seed=1, recompute=True)
        with pytest.raises(ValueError, match="whole micro-batches"):
            sequential_step(model, tokens, targets, num_slices=2)

    def test_recompute_trains(self):
        from repro.nn import Adam

        tokens, targets = data(MHA_SPEC)
        model = build_model(MHA_SPEC, seed=6, recompute=True)
        optimizer = Adam(model, lr=3e-3)
        losses = []
        for _step in range(5):
            losses.append(sequential_step(model, tokens, targets))
            optimizer.step()
        assert losses[-1] < losses[0]


class TestLiveBytes:
    def test_zero_when_idle(self):
        model = build_model(MHA_SPEC, seed=0)
        assert model.live_bytes() == 0

    def test_released_after_backward(self):
        tokens, targets = data(MHA_SPEC)
        model = build_model(MHA_SPEC, seed=0)
        sequential_step(model, tokens, targets)
        assert model.live_bytes() == 0
