"""Tests for visualization, CLI, and synthetic data."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import token_batches
from repro.schedules import build_problem, build_schedule
from repro.sim import UniformCost, simulate
from repro.viz import render_program, render_timeline


class TestTimeline:
    def _result(self):
        problem = build_problem("dapple", 2, 2)
        return simulate(build_schedule("dapple", problem), UniformCost(problem))

    def test_one_row_per_stage_plus_summary(self):
        art = render_timeline(self._result(), width=40)
        lines = art.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("stage 0:")
        assert "bubble" in lines[-1]

    def test_width_respected(self):
        art = render_timeline(self._result(), width=64)
        row = art.splitlines()[0]
        assert len(row) == len("stage 0: ") + 64

    def test_idle_renders_dots(self):
        art = render_timeline(self._result(), width=60)
        assert "." in art.splitlines()[1]  # stage 1 starts late

    def test_wgrad_glyph(self):
        problem = build_problem("zb", 2, 2)
        result = simulate(build_schedule("zb", problem),
                          UniformCost(problem, tw=1.0))
        assert "w" in render_timeline(result, width=60)

    def test_render_program_lists_ops(self):
        text = render_program(self._result(), 0, limit=3)
        assert text.startswith("F0.0c0@")


class TestCLI:
    def test_experiment_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table9" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_schedule_command(self, capsys):
        code = main(["schedule", "svpp", "--stages", "2",
                     "--microbatches", "2", "--slices", "2", "--width", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stage 0:" in out and "bubble" in out

    def test_schedule_with_f_variant(self, capsys):
        code = main(["schedule", "svpp", "--stages", "2", "--microbatches",
                     "2", "--slices", "2", "--forwards", "2"])
        assert code == 0

    def test_fast_experiment_runs(self, capsys):
        assert main(["experiment", "abl-variants"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSyntheticData:
    def test_shapes(self):
        tokens, targets = token_batches(100, 3, 2, 16)
        assert tokens.shape == targets.shape == (3, 2, 16)

    def test_targets_are_next_tokens(self):
        tokens, targets = token_batches(50, 2, 2, 8, seed=1)
        assert np.array_equal(tokens[:, :, 1:], targets[:, :, :-1])

    def test_deterministic_by_seed(self):
        a, _unused = token_batches(50, 1, 1, 8, seed=7)
        b, _unused2 = token_batches(50, 1, 1, 8, seed=7)
        c, _unused3 = token_batches(50, 1, 1, 8, seed=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_vocab_bounds(self):
        tokens, targets = token_batches(17, 2, 2, 32)
        assert tokens.min() >= 0 and tokens.max() < 17
        assert targets.min() >= 0 and targets.max() < 17

    def test_zipfian_head_heavy(self):
        tokens, _unused = token_batches(1000, 4, 4, 256, seed=0)
        head = np.mean(tokens < 10)
        assert head > 0.3  # the first 10 ranks dominate
