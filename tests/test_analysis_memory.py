"""Inferred peak live memory must equal what the runtime measures.

The analyzer's per-stage memory walk (:func:`infer_stage_memory`)
mirrors the components' ``live_bytes`` accounting symbolically; these
tests run every E0 grid method on the real NumPy runtime and assert the
static prediction matches the measured ``peak_live_bytes`` and
``peak_live_contexts`` *exactly* — not approximately — for every stage.
"""

import pytest

from repro.analysis import infer_stage_memory, partition_from_model
from repro.data import token_batches
from repro.model.spec import tiny_spec
from repro.nn import build_model
from repro.pipeline import PipelineRuntime
from repro.schedules.graph import compiled_graph
from repro.schedules.methods import build_problem, build_schedule

SETUPS = [
    ("dapple", {}),
    ("terapipe", {"num_slices": 4}),
    ("vpp", {"virtual_size": 2}),
    ("zb", {}),
    ("zbv", {}),
    ("svpp", {"num_slices": 4, "virtual_size": 2}),
    ("mepipe", {"num_slices": 4, "wgrad_gemms": 3}),
]

SPEC = tiny_spec(
    hidden_size=32, num_layers=6, num_heads=4, ffn_hidden_size=64,
    vocab_size=31, seq_length=16,
)


def run_and_infer(method, kwargs, spec=SPEC, recompute=False, batch=2):
    problem = build_problem(method, 4, 4, **kwargs)
    schedule = build_schedule(method, problem)
    model = build_model(spec, seed=11, recompute=recompute)
    tokens, targets = token_batches(
        spec.vocab_size, problem.num_microbatches, batch, spec.seq_length,
        seed=5,
    )
    result = PipelineRuntime(model, tokens, targets).run(schedule)
    partition = partition_from_model(model, problem.num_chunks)
    inferred = infer_stage_memory(
        partition,
        compiled_graph(schedule),
        batch=batch,
        slice_len=spec.seq_length // problem.num_slices,
    )
    return result, inferred


class TestInferredMemoryMatchesRuntime:
    @pytest.mark.parametrize("method,kwargs", SETUPS)
    def test_exact_agreement_on_e0_grid(self, method, kwargs):
        result, inferred = run_and_infer(method, kwargs)
        assert len(inferred) == len(result.stage_stats)
        for mem, stat in zip(inferred, result.stage_stats):
            assert mem.stage == stat.stage
            assert mem.peak_live_bytes == stat.peak_live_bytes, (
                f"stage {stat.stage}: inferred {mem.peak_live_bytes}, "
                f"measured {stat.peak_live_bytes}"
            )
            assert mem.peak_live_contexts == stat.peak_live_contexts

    @pytest.mark.parametrize("batch", [1, 3])
    def test_agreement_scales_with_batch(self, batch):
        result, inferred = run_and_infer(
            "mepipe", {"num_slices": 4, "wgrad_gemms": 3}, batch=batch
        )
        assert [m.peak_live_bytes for m in inferred] == [
            s.peak_live_bytes for s in result.stage_stats
        ]

    def test_agreement_with_gqa(self):
        import dataclasses

        spec = dataclasses.replace(SPEC, num_kv_heads=2)
        result, inferred = run_and_infer(
            "terapipe", {"num_slices": 4}, spec=spec
        )
        assert [m.peak_live_bytes for m in inferred] == [
            s.peak_live_bytes for s in result.stage_stats
        ]

    def test_agreement_under_recomputation(self):
        result, inferred = run_and_infer("dapple", {}, recompute=True)
        assert [m.peak_live_bytes for m in inferred] == [
            s.peak_live_bytes for s in result.stage_stats
        ]

    def test_peaks_are_positive_and_exposed_on_result(self):
        result, inferred = run_and_infer("dapple", {})
        assert result.peak_live_bytes == max(
            s.peak_live_bytes for s in result.stage_stats
        )
        assert all(m.peak_live_bytes > 0 for m in inferred)
