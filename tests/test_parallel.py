"""Tests for repro.parallel."""

import pytest

from repro.model import LLAMA_13B
from repro.parallel import (
    COMM_RANKING,
    ParallelConfig,
    cp_layer_comm_bytes,
    dp_grad_sync_bytes,
    enumerate_configs,
    pp_boundary_bytes,
    tp_layer_comm_bytes,
    validate_for_cluster,
)


class TestParallelConfig:
    def test_devices(self):
        cfg = ParallelConfig(dp=2, pp=8, cp=4)
        assert cfg.num_devices == 64

    def test_micro_batches_only_divided_by_dp(self):
        """Table 7 discussion: CP increases n per DP group."""
        a = ParallelConfig(dp=8, pp=8, cp=1)
        b = ParallelConfig(dp=4, pp=8, cp=2)
        assert a.micro_batches(32) == 4
        assert b.micro_batches(32) == 8

    def test_micro_batches_indivisible_raises(self):
        with pytest.raises(ValueError):
            ParallelConfig(dp=3, pp=1).micro_batches(32)

    def test_tokens_per_worker_slice(self):
        cfg = ParallelConfig(dp=2, pp=8, cp=2, spp=2)
        assert cfg.tokens_per_worker_slice(LLAMA_13B) == 1024

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            ParallelConfig(dp=0)
        with pytest.raises(ValueError):
            ParallelConfig(pp=1, vp=2)

    def test_describe_mentions_active_dims(self):
        text = ParallelConfig(dp=2, pp=8, spp=4, recompute=True).describe()
        assert "SPP=4" in text and "recompute" in text and "CP" not in text

    def test_with_returns_modified_copy(self):
        cfg = ParallelConfig(dp=2, pp=8, cp=4)
        cfg2 = cfg.with_(spp=4)
        assert cfg2.spp == 4 and cfg.spp == 1


class TestValidation:
    def test_valid_config_no_problems(self):
        cfg = ParallelConfig(dp=4, pp=8, cp=2)
        assert validate_for_cluster(cfg, 64, LLAMA_13B) == []

    def test_wrong_device_count(self):
        cfg = ParallelConfig(dp=2, pp=8)
        assert any("cluster size" in p for p in validate_for_cluster(cfg, 64, LLAMA_13B))

    def test_uneven_chunking_flagged(self):
        # 40 slots cannot be split into 16 x 2 chunks.
        cfg = ParallelConfig(dp=4, pp=16, vp=2)
        assert any("chunks" in p for p in validate_for_cluster(cfg, 64, LLAMA_13B))

    def test_spp_plus_recompute_rejected(self):
        cfg = ParallelConfig(dp=8, pp=8, spp=4, recompute=True)
        assert any("recomputation" in p for p in validate_for_cluster(cfg, 64, LLAMA_13B))


class TestCommVolumes:
    def test_table2_ordering_tp_heaviest(self):
        """TP > CP > PP per layer at equal group size (Table 2)."""
        tp_cfg = ParallelConfig(dp=8, pp=4, tp=2)
        cp_cfg = ParallelConfig(dp=8, pp=4, cp=2)
        tp = tp_layer_comm_bytes(LLAMA_13B, tp_cfg)
        cp = cp_layer_comm_bytes(LLAMA_13B, cp_cfg)
        pp = pp_boundary_bytes(LLAMA_13B, cp_cfg)
        assert tp > cp > pp
        assert COMM_RANKING[0] == "TP"

    def test_no_cp_no_comm(self):
        cfg = ParallelConfig(dp=8, pp=8)
        assert cp_layer_comm_bytes(LLAMA_13B, cfg) == 0

    def test_spp_adds_no_comm_but_shrinks_pp_messages(self):
        base = ParallelConfig(dp=8, pp=8)
        spp = ParallelConfig(dp=8, pp=8, spp=4)
        assert cp_layer_comm_bytes(LLAMA_13B, spp) == 0
        assert pp_boundary_bytes(LLAMA_13B, spp) == pp_boundary_bytes(LLAMA_13B, base) // 4

    def test_dp_sync_scales_with_stage_params(self):
        small = dp_grad_sync_bytes(LLAMA_13B, ParallelConfig(dp=4, pp=16))
        large = dp_grad_sync_bytes(LLAMA_13B, ParallelConfig(dp=4, pp=8))
        assert large == 2 * small


class TestGrid:
    def test_enumeration_respects_device_count(self):
        configs = list(
            enumerate_configs(LLAMA_13B, 64, 64, use_cp=True, use_recompute=True)
        )
        assert configs
        assert all(c.num_devices == 64 for c in configs)
        assert all(c.dp >= 2 for c in configs)

    def test_spp_and_cp_flags(self):
        spp_configs = list(enumerate_configs(LLAMA_13B, 64, 128, use_spp=True))
        assert any(c.spp > 1 for c in spp_configs)
        assert all(c.cp == 1 for c in spp_configs)

    def test_dapple_search_space_contains_paper_optimum(self):
        """Table 5: DAPPLE's optimum at GBS 128 is (PP=8, CP=2, VP=1)."""
        configs = list(
            enumerate_configs(LLAMA_13B, 64, 128, use_cp=True, use_recompute=True)
        )
        assert any(c.pp == 8 and c.cp == 2 and c.vp == 1 and not c.recompute
                   for c in configs)
