"""Property-based mutation tests of the schedule verifier.

Take every generated schedule from :mod:`repro.schedules.methods`,
corrupt it with a seeded random single-op mutation (drop, duplicate,
cross-stage move, dependent-pair swap), and assert the verifier names
the defect with the right rule id.  A hypothesis sweep additionally
checks that arbitrary swaps never crash the verifier and that reports
are deterministic.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedules import (
    Schedule,
    StageProgram,
    build_problem,
    build_schedule,
)
from repro.schedules.methods import METHODS
from repro.schedules.verify import SAFETY_RULES, verify_schedule

#: One representative shape per method: p=4 (p=2 for the cheap
#: baselines), n=8, and the method's native s/v/wgrad settings.
SHAPES: dict[str, tuple[int, int, int, int, int]] = {
    "gpipe": (2, 4, 1, 1, 1),
    "dapple": (4, 8, 1, 1, 1),
    "vpp": (2, 4, 1, 2, 1),
    "hanayo": (4, 8, 1, 2, 1),
    "terapipe": (2, 4, 4, 1, 1),
    "zb": (4, 8, 1, 1, 2),
    "zbv": (4, 8, 1, 2, 2),
    "svpp": (4, 8, 4, 2, 1),
    "mepipe": (4, 8, 4, 2, 2),
}


def built(method: str) -> Schedule:
    p, n, s, v, g = SHAPES[method]
    problem = build_problem(method, p, n, num_slices=s, virtual_size=v, wgrad_gemms=g)
    return build_schedule(method, problem)


def clone(schedule: Schedule) -> Schedule:
    return Schedule(
        problem=schedule.problem,
        programs=[StageProgram(pr.stage, list(pr.ops)) for pr in schedule.programs],
        name=schedule.name,
    )


def test_shapes_cover_every_method():
    assert set(SHAPES) == set(METHODS)


@pytest.mark.parametrize("method", sorted(METHODS))
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestSeededMutations:
    def test_dropped_op_is_named(self, method, seed):
        sched = clone(built(method))
        rng = random.Random(seed)
        program = rng.choice(sched.programs)
        victim = program.ops.pop(rng.randrange(len(program.ops)))
        rep = verify_schedule(sched, method=method)
        assert not rep.ok
        assert any(f.op == victim for f in rep.by_rule("ST002")), rep.render_text()

    def test_duplicated_op_is_named(self, method, seed):
        sched = clone(built(method))
        rng = random.Random(seed)
        program = rng.choice(sched.programs)
        victim = rng.choice(program.ops)
        program.ops.insert(rng.randrange(len(program.ops) + 1), victim)
        rep = verify_schedule(sched, method=method)
        assert any(f.op == victim for f in rep.by_rule("ST003")), rep.render_text()

    def test_misplaced_op_is_named(self, method, seed):
        sched = clone(built(method))
        if len(sched.programs) < 2:
            pytest.skip("needs two stages")
        rng = random.Random(seed)
        src = rng.choice(sched.programs)
        dst = rng.choice([pr for pr in sched.programs if pr.stage != src.stage])
        victim = src.ops.pop(rng.randrange(len(src.ops)))
        dst.ops.insert(rng.randrange(len(dst.ops) + 1), victim)
        rep = verify_schedule(sched, method=method)
        hits = rep.by_rule("ST001")
        assert any(f.op == victim and f.stage == dst.stage for f in hits), (
            rep.render_text()
        )

    def test_dependent_swap_yields_minimal_cycle(self, method, seed):
        sched = clone(built(method))
        rng = random.Random(seed)
        pairs = []
        for program in sched.programs:
            pos = {op: i for i, op in enumerate(program.ops)}
            for j, op in enumerate(program.ops):
                for dep in sched.problem.deps(op):
                    i = pos.get(dep)
                    if i is not None and i < j:
                        pairs.append((program, i, j))
        program, i, j = rng.choice(pairs)
        program.ops[i], program.ops[j] = program.ops[j], program.ops[i]
        rep = verify_schedule(sched, rules=SAFETY_RULES)
        (f,) = rep.by_rule("DL001")
        assert any("minimal blocking cycle" in line for line in f.witness)
        assert any("blocked at" in line for line in f.witness)


@settings(max_examples=30, deadline=None)
@given(
    method=st.sampled_from(sorted(METHODS)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_swap_never_crashes_and_is_deterministic(method, seed):
    """Any single swap either stays clean or produces findings —
    the verifier itself must not raise — and verifying twice gives
    the same rule ids."""
    sched = clone(built(method))
    rng = random.Random(seed)
    program = rng.choice(sched.programs)
    if len(program.ops) >= 2:
        i, j = rng.sample(range(len(program.ops)), 2)
        program.ops[i], program.ops[j] = program.ops[j], program.ops[i]
    first = verify_schedule(sched, method=method)
    second = verify_schedule(sched, method=method)
    assert first.rule_ids() == second.rule_ids()
    for finding in first.findings:
        assert finding.rule_id and finding.message
