"""Parallel fan-out, on-disk sweep cache, and the skipped-config trail.

The contract under test: a grid search returns the identical best
config, evaluation trail, and skip reasons for every worker count and
cache state — parallelism and caching are pure wall-clock
optimizations.
"""

import json

import pytest

from repro.hardware.cluster import RTX4090_CLUSTER
from repro.model.spec import LLAMA_13B
from repro.parallel.strategies import ParallelConfig
from repro.planner.parallel import (
    CACHE_SCHEMA,
    EvalOutcome,
    EvalTask,
    SweepCache,
    eval_fingerprint,
    evaluate_tasks,
    merge_outcomes,
)
from repro.planner.search import search_method

GBS = 64


def _task(config=None, method="mepipe", gbs=GBS):
    config = config or ParallelConfig(dp=8, pp=8, spp=2)
    return EvalTask(method, LLAMA_13B, RTX4090_CLUSTER, config, gbs)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_stable_and_input_sensitive():
    base = _task()
    assert eval_fingerprint(base) == eval_fingerprint(_task())
    assert eval_fingerprint(base) != eval_fingerprint(_task(gbs=128))
    assert eval_fingerprint(base) != eval_fingerprint(_task(method="svpp"))
    assert eval_fingerprint(base) != eval_fingerprint(
        _task(config=ParallelConfig(dp=4, pp=16, spp=2))
    )


# ----------------------------------------------------------------------
# SweepCache
# ----------------------------------------------------------------------
def test_cache_round_trips_results_and_errors(tmp_path):
    cache = SweepCache(tmp_path)
    task = _task()
    assert cache.get(task) is None

    outcome = evaluate_tasks([task], cache=cache)[0]
    assert outcome.ok
    hit = cache.get(task)
    assert hit is not None and hit.ok
    assert hit.result == outcome.result

    bad = _task(config=ParallelConfig(dp=8, pp=8, spp=3))  # seq not divisible
    (bad_outcome,) = evaluate_tasks([bad], cache=cache)
    assert not bad_outcome.ok
    cached_bad = cache.get(bad)
    assert cached_bad is not None and not cached_bad.ok
    assert cached_bad.error == bad_outcome.error


def test_cache_tolerates_corrupt_and_stale_entries(tmp_path):
    cache = SweepCache(tmp_path)
    task = _task()
    evaluate_tasks([task], cache=cache)
    path = tmp_path / f"{eval_fingerprint(task)}.json"
    assert path.exists()

    path.write_text("{ not json")
    assert cache.get(task) is None  # corrupt -> miss, no raise

    entry = {"schema": CACHE_SCHEMA - 1, "status": "ok", "result": {}}
    path.write_text(json.dumps(entry))
    assert cache.get(task) is None  # stale schema -> miss

    # And a re-run repairs the entry.
    evaluate_tasks([task], cache=cache)
    assert cache.get(task) is not None


def test_cache_kill_switch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", "0")
    cache = SweepCache(tmp_path)
    task = _task()
    evaluate_tasks([task], cache=cache)
    assert not list(tmp_path.iterdir())
    assert cache.get(task) is None


def test_cache_dir_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    cache = SweepCache()
    assert cache.root == tmp_path / "elsewhere"


# ----------------------------------------------------------------------
# Deterministic fan-out and merge
# ----------------------------------------------------------------------
def test_jobs_do_not_change_search_outcome(tmp_path):
    """--jobs 1 and --jobs 4 produce identical best, trail, and skips."""
    results = {
        jobs: search_method(
            "mepipe", LLAMA_13B, RTX4090_CLUSTER, GBS, jobs=jobs
        )
        for jobs in (1, 4)
    }
    assert results[1].best == results[4].best
    assert results[1].evaluated == results[4].evaluated
    assert [(s.config, s.reason) for s in results[1].skipped] == [
        (s.config, s.reason) for s in results[4].skipped
    ]


def test_cache_does_not_change_search_outcome(tmp_path):
    cache = SweepCache(tmp_path)
    cold = search_method("zb", LLAMA_13B, RTX4090_CLUSTER, GBS, cache=cache)
    assert cache.misses > 0 and cache.hits == 0
    warm = search_method("zb", LLAMA_13B, RTX4090_CLUSTER, GBS, cache=cache)
    assert cache.hits > 0
    assert warm.best == cold.best
    assert warm.evaluated == cold.evaluated


def test_merge_tie_breaks_on_config_sort_key():
    def result_for(config, t):
        from repro.planner.evaluate import EvalResult

        return EvalOutcome(
            result=EvalResult(
                method="x",
                config=config,
                iteration_time_s=t,
                bubble_ratio=0.0,
                peak_memory_bytes=0,
                activation_bytes=0,
                oom=False,
                tflops_per_gpu=0.0,
                mfu=0.0,
            )
        )

    small = ParallelConfig(dp=2, pp=2)
    large = ParallelConfig(dp=4, pp=1)
    # Equal times: the smaller sort key must win regardless of order.
    for order in ([small, large], [large, small]):
        best, evaluated = merge_outcomes([result_for(c, 1.0) for c in order])
        assert best is not None and best.config == small
        assert len(evaluated) == 2


# ----------------------------------------------------------------------
# Skip trail
# ----------------------------------------------------------------------
def test_search_records_skips_with_reasons():
    result = search_method("mepipe", LLAMA_13B, RTX4090_CLUSTER, GBS)
    assert result.skipped, "expected statically pruned candidates"
    for skip in result.skipped:
        assert skip.reason
    assert any("static memory" in s.reason for s in result.skipped)
    # Trail + skips cover disjoint configs.
    evaluated = {r.config for r in result.evaluated}
    assert evaluated.isdisjoint({s.config for s in result.skipped})


def test_rejected_configs_carry_rejection_reason(tmp_path):
    """An evaluation-time rejection lands in the trail, cached or not."""
    task = _task(config=ParallelConfig(dp=8, pp=8, spp=3))
    cache = SweepCache(tmp_path)
    (outcome,) = evaluate_tasks([task], cache=cache)
    assert not outcome.ok
    assert outcome.error
    (replayed,) = evaluate_tasks([task], cache=cache)
    assert replayed.error == outcome.error


def test_search_result_backward_compatible_construction():
    from repro.planner.search import SearchResult

    empty = SearchResult(method="x", best=None, evaluated=[])
    assert empty.skipped == []
    assert not empty.all_oom


@pytest.mark.parametrize("jobs", [1, 2])
def test_process_pool_path_smoke(jobs):
    tasks = [
        _task(config=ParallelConfig(dp=8, pp=8, spp=spp)) for spp in (1, 2)
    ]
    outcomes = evaluate_tasks(tasks, jobs=jobs)
    assert len(outcomes) == 2
    assert all(o.ok for o in outcomes)
