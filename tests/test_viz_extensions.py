"""Tests for memory profiles and Chrome-trace export."""

import json

import pytest

from repro.schedules import build_problem, build_schedule
from repro.sim import UniformCost, simulate
from repro.viz import (
    activation_series,
    render_memory_profile,
    to_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def svpp_result():
    problem = build_problem("svpp", 4, 4, num_slices=2)
    return simulate(build_schedule("svpp", problem), UniformCost(problem))


@pytest.fixture(scope="module")
def mepipe_result():
    problem = build_problem("mepipe", 2, 2, num_slices=2, wgrad_gemms=2)
    return simulate(build_schedule("mepipe", problem),
                    UniformCost(problem, tw=1.0))


class TestActivationSeries:
    def test_starts_and_ends_at_zero(self, svpp_result):
        series = activation_series(svpp_result, 0)
        assert series[0][1] == 0.0
        assert series[-1][1] == pytest.approx(0.0, abs=1e-12)

    def test_peak_matches_executor_ledger(self, svpp_result):
        series = activation_series(svpp_result, 0)
        peak = max(v for _t, v in series)
        assert peak == pytest.approx(
            svpp_result.stages[0].peak_activation_units)

    def test_split_backward_series_balances(self, mepipe_result):
        series = activation_series(mepipe_result, 1)
        assert series[-1][1] == pytest.approx(0.0, abs=1e-12)

    def test_times_monotone(self, svpp_result):
        times = [t for t, _v in activation_series(svpp_result, 2)]
        assert times == sorted(times)


class TestMemoryProfile:
    def test_renders_peak_label(self, svpp_result):
        art = render_memory_profile(svpp_result, 0, width=50, height=6)
        assert "peak 0.6250 A" in art  # Figure 4(a)'s 5/8 A

    def test_row_count(self, svpp_result):
        art = render_memory_profile(svpp_result, 0, width=40, height=5)
        assert len(art.splitlines()) == 7  # height + axis + caption


class TestChromeTrace:
    def test_event_count(self, svpp_result):
        trace = to_chrome_trace(svpp_result)
        ops = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(ops) == svpp_result.problem.num_stages * 0 + sum(
            1 for _ in svpp_result.records)

    def test_metadata(self, svpp_result):
        trace = to_chrome_trace(svpp_result)
        assert trace["otherData"]["schedule"] == "svpp"
        assert 0 < trace["otherData"]["bubble_ratio"] < 1

    def test_kinds_categorized(self, mepipe_result):
        trace = to_chrome_trace(mepipe_result)
        cats = {e["cat"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert cats == {"F", "B", "W"}

    def test_write_roundtrip(self, svpp_result, tmp_path):
        path = write_chrome_trace(svpp_result, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len(data["traceEvents"]) > 0

    def test_durations_positive(self, svpp_result):
        trace = to_chrome_trace(svpp_result)
        for event in trace["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] > 0


class TestCLIIntegration:
    def test_schedule_memory_and_trace(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "t.json"
        code = main(["schedule", "svpp", "--stages", "2", "--microbatches",
                     "2", "--slices", "2", "--memory",
                     "--trace", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "peak" in out and "chrome trace written" in out
        assert out_file.exists()
