"""Seeded-fault tests for the batched evaluator's defences.

The batched tier's correctness rests on two invariants: the stacked
cost tables keep row ``j`` aligned with member ``j``, and a batch only
ever contains one topology class.  These tests *break* each invariant
deliberately (a transposed cost-table row; a structure key that
collides two different topologies) and assert the harness notices —
the first as a bit-identity divergence the golden tests would flag,
the second as a loud :class:`ValueError` from the raw structural
check, which does not trust the (mutated) key.
"""

import numpy as np
import pytest

import repro.analysis.evaluate.batch as batch_mod
from repro.analysis.evaluate import evaluate_schedule, evaluate_schedule_batch
from repro.hardware.cluster import RTX4090_CLUSTER
from repro.model.spec import LLAMA_13B
from repro.parallel.strategies import ParallelConfig
from repro.planner.evaluate import evaluate_config_batch
from repro.planner.parallel import EvalTask
from repro.schedules import gencache
from repro.schedules.graph import ScheduleGraph
from repro.schedules.methods import build_problem, build_schedule
from repro.sim.cost import UniformCost


def two_member_class():
    """A genuine topology class of size two: one cost-independent
    structure (dapple) under two different cost tables."""
    problem = build_problem("dapple", 4, 8)
    costs = [
        UniformCost(problem, tf=1.0, tb=2.0),
        UniformCost(problem, tf=1.5, tb=3.0),
    ]
    schedules = [build_schedule("dapple", problem, cost=c) for c in costs]
    return schedules, costs


def test_unmutated_control_is_bit_identical():
    schedules, costs = two_member_class()
    overheads = [0.0, 0.25]
    batch = evaluate_schedule_batch(schedules, costs, overheads)
    for sch, c, overhead, batched in zip(schedules, costs, overheads, batch):
        assert batched == evaluate_schedule(sch, c, overhead)


def test_transposed_cost_row_is_detected(monkeypatch):
    """Mutation: swap rows 0 and 1 of the stacked duration table.

    Row ``j`` must carry member ``j``'s durations; after the swap both
    members are timed with the *other* member's costs, so the batch
    results must diverge from the scalar evaluator — the exact failure
    the golden bit-identity tests exist to catch.
    """
    real = batch_mod._stack_cost_tables

    def transposed(graph, costs):
        duration, act_units, comm = real(graph, costs)
        mutated = duration.copy()
        mutated[[0, 1]] = mutated[[1, 0]]
        return mutated, act_units, comm

    monkeypatch.setattr(batch_mod, "_stack_cost_tables", transposed)
    schedules, costs = two_member_class()
    batch = evaluate_schedule_batch(schedules, costs, [0.0, 0.0])
    scalar = [evaluate_schedule(s, c) for s, c in zip(schedules, costs)]
    assert batch[0].makespan != scalar[0].makespan
    assert batch[1].makespan != scalar[1].makespan
    assert not np.array_equal(batch[0].times.end, scalar[0].times.end)
    # ...and the two members' timings were exchanged wholesale.
    assert batch[0].makespan == scalar[1].makespan
    assert batch[1].makespan == scalar[0].makespan


def test_colliding_structure_key_raises_loudly(monkeypatch):
    """Mutation: an off-by-one class key that merges two topologies.

    The batch evaluator's structural check compares the graphs' raw
    attributes, *not* the key, so a buggy key produces a ValueError —
    never silently wrong floats.
    """
    gencache.clear()  # a colliding key must not alias stored plans
    monkeypatch.setattr(
        ScheduleGraph, "structure_key", lambda self: ("collision",)
    )
    a = build_problem("dapple", 4, 8)
    b = build_problem("dapple", 4, 16)
    ca, cb = UniformCost(a), UniformCost(b)
    sa = build_schedule("dapple", a, cost=ca)
    sb = build_schedule("dapple", b, cost=cb)
    with pytest.raises(ValueError, match="one topology class"):
        evaluate_schedule_batch([sa, sb], [ca, cb], [0.0, 0.0])


def test_colliding_key_fails_loudly_through_the_planner(monkeypatch):
    """The same key mutation, driven through ``evaluate_config_batch``:
    the planner groups on the (mutated) key, hands a mixed batch to the
    evaluator, and the structural check rejects it instead of
    evaluating garbage."""
    gencache.clear()
    monkeypatch.setattr(
        ScheduleGraph, "structure_key", lambda self: ("collision",)
    )
    tasks = [
        EvalTask(
            "dapple",
            LLAMA_13B,
            RTX4090_CLUSTER,
            ParallelConfig(dp=dp, pp=pp),
            64,
            tier="analytic",
        )
        for dp, pp in ((8, 8), (16, 4))
    ]
    with pytest.raises(ValueError, match="one topology class"):
        evaluate_config_batch(tasks)
