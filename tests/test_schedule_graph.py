"""Unit tests of the compiled schedule graph IR.

The graph is the shared substrate of the verifier's fast paths and the
event-driven simulator, so these tests pin its contract: dense
stage-major layout, CSR edges that agree exactly with
``PipelineProblem.deps``, content-keyed caching, and compile errors on
structurally broken schedules.
"""

import pytest

from repro.schedules.base import OpId, OpKind, ScheduleError
from repro.schedules.graph import (
    KIND_B,
    KIND_F,
    KIND_W,
    ScheduleGraph,
    compiled_graph,
    fingerprint,
)
from repro.schedules.methods import build_problem, build_schedule

from tests.test_verify import golden_grid


def _build(method="mepipe", p=4, n=8, s=4, v=1, g=2):
    problem = build_problem(
        method, p, n, num_slices=s, virtual_size=v, wgrad_gemms=g
    )
    return build_schedule(method, problem)


def test_dense_layout_is_stage_major_program_order():
    schedule = _build()
    graph = compiled_graph(schedule)
    assert graph.num_ops == len(schedule.problem.all_ops())
    for stage, (lo, hi) in enumerate(graph.stage_bounds):
        program = schedule.stage_ops(stage)
        assert [graph.ops[i] for i in range(lo, hi)] == program
        for offset, i in enumerate(range(lo, hi)):
            assert graph.stage[i] == stage
            assert graph.pos[i] == offset


@pytest.mark.parametrize(
    "method,p,n,s,v,g", list(golden_grid()), ids=lambda val: str(val)
)
def test_csr_edges_match_problem_deps(method, p, n, s, v, g):
    problem = build_problem(
        method, p, n, num_slices=s, virtual_size=v, wgrad_gemms=g
    )
    schedule = build_schedule(method, problem)
    graph = compiled_graph(schedule)
    index_of = {op: i for i, op in enumerate(graph.ops)}
    for i, op in enumerate(graph.ops):
        expect = [index_of[d] for d in problem.deps(op)]
        assert sorted(graph.preds_of(i)) == sorted(expect), op
    # Successor arrays are the exact transpose of the predecessors.
    edges = {
        (graph.pred[e], i)
        for i in range(graph.num_ops)
        for e in range(graph.pred_indptr[i], graph.pred_indptr[i + 1])
    }
    tr = {
        (i, graph.succ[e])
        for i in range(graph.num_ops)
        for e in range(graph.succ_indptr[i], graph.succ_indptr[i + 1])
    }
    assert edges == tr


def test_kind_codes_and_cross_flags():
    schedule = _build(p=4, s=2)
    graph = compiled_graph(schedule)
    code_of = {OpKind.F: KIND_F, OpKind.B: KIND_B, OpKind.W: KIND_W}
    problem = schedule.problem
    for i, op in enumerate(graph.ops):
        assert graph.kind[i] == code_of[op.kind]
    for i in range(graph.num_ops):
        for e in range(graph.pred_indptr[i], graph.pred_indptr[i + 1]):
            dep, op = graph.ops[graph.pred[e]], graph.ops[i]
            assert graph.pred_cross[e] == problem.is_cross_stage(dep, op)


def test_compiled_graph_is_cached_and_invalidates_on_mutation():
    schedule = _build()
    g1 = compiled_graph(schedule)
    assert compiled_graph(schedule) is g1
    # In-place reorder changes the fingerprint and recompiles.
    ops = schedule.programs[0].ops
    ops[0], ops[1] = ops[1], ops[0]
    token = fingerprint(schedule)
    g2 = compiled_graph(schedule)
    assert g2 is not g1
    assert g2.fingerprint == token
    ops[0], ops[1] = ops[1], ops[0]
    g3 = compiled_graph(schedule)
    assert g3 is not g2
    assert g3.fingerprint == g1.fingerprint


def test_compile_rejects_foreign_op():
    schedule = _build(method="dapple", s=1, v=1, g=1)
    schedule.programs[0].ops.append(OpId(OpKind.F, 999, 0, 0))
    with pytest.raises(ScheduleError, match="cannot compile"):
        compiled_graph(schedule)


def test_compile_rejects_duplicate_op():
    schedule = _build(method="dapple", s=1, v=1, g=1)
    schedule.programs[0].ops.append(schedule.programs[0].ops[0])
    with pytest.raises(ScheduleError, match="cannot compile"):
        compiled_graph(schedule)


def test_compile_rejects_misplaced_op():
    schedule = _build(method="dapple", s=1, v=1, g=1)
    moved = schedule.programs[0].ops.pop(0)
    schedule.programs[1].ops.append(moved)
    with pytest.raises(ScheduleError, match="cannot compile"):
        compiled_graph(schedule)


def test_compile_rejects_missing_op():
    schedule = _build(method="dapple", s=1, v=1, g=1)
    schedule.programs[0].ops.pop()
    with pytest.raises(ScheduleError, match="cannot compile"):
        compiled_graph(schedule)


def test_graph_is_slotted():
    graph = compiled_graph(_build())
    assert isinstance(graph, ScheduleGraph)
    with pytest.raises(AttributeError):
        graph.arbitrary_attribute = 1
