"""The persistent planner worker pool: modes, reuse, faults, shutdown.

These tests drive :mod:`repro.planner.pool` directly with small
picklable functions — real sweeps are exercised through
``evaluate_tasks`` elsewhere — and check the properties the service
relies on: warm reuse across calls, the per-sweep kill switch, inline
fallback when a worker dies, and leak-free shutdown.
"""

import asyncio
import multiprocessing
import os
import signal

import pytest

from repro.planner import pool


@pytest.fixture(autouse=True)
def clean_pool(monkeypatch):
    """Each test starts with no pool, fresh counters, env-driven mode."""
    monkeypatch.delenv("REPRO_PLANNER_POOL", raising=False)
    pool.shutdown()
    pool.reset_stats()
    pool.set_mode(None)
    yield
    pool.shutdown()
    pool.reset_stats()
    pool.set_mode(None)


def _square(x: int) -> int:
    return x * x


def _die_in_worker(x: int) -> int:
    """Kill the hosting process — but only when it is a pool worker, so
    the inline fallback re-run returns normally."""
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    return x + 1


def test_default_mode_is_persistent():
    assert pool.pool_mode() == "persistent"


def test_env_selects_mode(monkeypatch):
    monkeypatch.setenv("REPRO_PLANNER_POOL", "per-sweep")
    pool.set_mode(None)  # drop the cached mode; re-read the env
    assert pool.pool_mode() == "per-sweep"
    monkeypatch.setenv("REPRO_PLANNER_POOL", "bogus")
    pool.set_mode(None)
    assert pool.pool_mode() == "persistent"  # unknown values fall back


def test_set_mode_rejects_unknown():
    with pytest.raises(ValueError, match="unknown pool mode"):
        pool.set_mode("forkbomb")


def test_single_job_runs_inline():
    assert pool.run_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]
    stats = pool.stats()
    assert stats["pool_workers"] == 0
    assert stats["worker_reuse"] == 0
    assert stats["worker_cold"] == 0


def test_persistent_pool_is_reused_across_calls():
    first = pool.run_map(_square, [1, 2, 3], jobs=2)
    assert first == [1, 4, 9]
    after_first = pool.stats()
    assert after_first["pool_workers"] == 2
    assert after_first["worker_cold"] == 3
    assert after_first["worker_reuse"] == 0

    second = pool.run_map(_square, [4, 5], jobs=2)
    assert second == [16, 25]
    after_second = pool.stats()
    assert after_second["worker_reuse"] == 2  # served by the warm pool
    assert after_second["pool_workers"] == 2


def test_per_sweep_mode_leaves_no_pool_behind():
    pool.set_mode("per-sweep")
    assert pool.run_map(_square, [2, 3], jobs=2) == [4, 9]
    stats = pool.stats()
    assert stats["pool_workers"] == 0
    assert stats["worker_reuse"] == 0


def test_broken_pool_falls_back_inline():
    results = pool.run_map(_die_in_worker, [10, 20], jobs=2)
    assert results == [11, 21]  # the inline re-run, not garbage
    stats = pool.stats()
    assert stats["pool_faults"] == 1
    # The next call rebuilds the pool and works normally.
    assert pool.run_map(_square, [6], jobs=2) == [36]


def test_shutdown_is_idempotent_and_leakfree():
    pool.run_map(_square, [1, 2], jobs=2)
    assert pool.stats()["pool_workers"] == 2
    pool.shutdown()
    pool.shutdown()  # second call is a no-op, not an error
    assert pool.stats()["pool_workers"] == 0
    # No orphaned worker processes survive the shutdown.
    assert multiprocessing.active_children() == []


def test_jobstore_close_shuts_the_pool_down():
    from repro.service.config import ServiceConfig
    from repro.service.jobs import JobStore

    async def scenario() -> None:
        store = JobStore(ServiceConfig())
        pool.run_map(_square, [1, 2], jobs=2)
        assert pool.stats()["pool_workers"] == 2
        await store.close()

    asyncio.run(scenario())
    assert pool.stats()["pool_workers"] == 0
    assert multiprocessing.active_children() == []
