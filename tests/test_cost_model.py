"""Tests for the calibrated cluster cost model."""

import pytest

from repro.hardware import A100_CLUSTER, RTX4090_CLUSTER
from repro.model import LLAMA_13B
from repro.parallel import ParallelConfig
from repro.schedules import OpId, OpKind, PipelineProblem
from repro.schedules.svpp import mepipe_problem, svpp_problem
from repro.sim.cost import ClusterCost


def make_cost(config=None, problem=None, cluster=RTX4090_CLUSTER, spec=LLAMA_13B):
    config = config or ParallelConfig(dp=8, pp=8, spp=4)
    problem = problem or svpp_problem(config.pp, 8, config.spp)
    return ClusterCost(spec=spec, config=config, cluster=cluster, problem=problem)


class TestComputeTimes:
    def test_later_slices_slower(self):
        """Attention-score imbalance: slice 3 outweighs slice 0."""
        cost = make_cost()
        t0 = cost.duration(OpId(OpKind.F, 0, 0, 3))
        t3 = cost.duration(OpId(OpKind.F, 0, 3, 3))
        assert t3 > t0

    def test_backward_roughly_double_forward(self):
        cost = make_cost()
        f = cost.duration(OpId(OpKind.F, 0, 1, 3))
        b = cost.duration(OpId(OpKind.B, 0, 1, 3))
        assert 1.6 < b / f < 2.6

    def test_split_backward_partition(self):
        """With a split backward, B + sum(W) ~= fused B."""
        config = ParallelConfig(dp=8, pp=8, spp=4)
        fused = make_cost(config)
        split_problem = mepipe_problem(8, 8, 4, wgrad_gemms=2)
        split = make_cost(config, split_problem)
        b_fused = fused.duration(OpId(OpKind.B, 0, 1, 3))
        b_split = split.duration(OpId(OpKind.B, 0, 1, 3))
        w_total = sum(
            split.duration(OpId(OpKind.W, 0, 1, 3, g)) for g in range(2))
        assert b_split + w_total == pytest.approx(b_fused, rel=1e-6)

    def test_head_chunk_heavier_than_embedding_chunk(self):
        cost = make_cost()
        first = cost.duration(OpId(OpKind.F, 0, 0, 0))
        last = cost.duration(OpId(OpKind.F, 0, 0, 7))
        assert last > first  # head GEMM outweighs the embedding lookup

    def test_recompute_inflates_backward_only(self):
        base_cfg = ParallelConfig(dp=4, pp=8, cp=2)
        rc_cfg = ParallelConfig(dp=4, pp=8, cp=2, recompute=True)
        problem = PipelineProblem(num_stages=8, num_microbatches=8)
        base = make_cost(base_cfg, problem)
        rc = make_cost(rc_cfg, problem)
        op_f = OpId(OpKind.F, 0, 0, 3)
        op_b = OpId(OpKind.B, 0, 0, 3)
        assert rc.duration(op_f) == pytest.approx(base.duration(op_f))
        assert rc.duration(op_b) > base.duration(op_b)


class TestCommTimes:
    def test_same_stage_edges_free(self):
        cost = make_cost()
        dep = OpId(OpKind.F, 0, 0, 3)
        op = OpId(OpKind.F, 0, 1, 3)
        assert cost.comm_time(dep, op) == 0.0

    def test_cross_stage_edges_cost(self):
        cost = make_cost()
        dep = OpId(OpKind.F, 0, 0, 3)
        op = OpId(OpKind.F, 0, 0, 4)
        assert cost.comm_time(dep, op) > 0.0

    def test_smaller_slices_smaller_messages(self):
        small = make_cost(ParallelConfig(dp=8, pp=8, spp=8),
                          svpp_problem(8, 8, 8))
        big = make_cost(ParallelConfig(dp=8, pp=8, spp=2),
                        svpp_problem(8, 8, 2))
        dep_s = OpId(OpKind.F, 0, 0, 3)
        op_s = OpId(OpKind.F, 0, 0, 4)
        assert small.comm_time(dep_s, op_s) < big.comm_time(dep_s, op_s)

    def test_nvlink_pp_cheaper_than_ib(self):
        problem = PipelineProblem(num_stages=4, num_microbatches=8)
        cfg = ParallelConfig(dp=8, pp=4)
        rtx = ClusterCost(spec=LLAMA_13B, config=cfg,
                          cluster=RTX4090_CLUSTER, problem=problem)
        a100 = ClusterCost(spec=LLAMA_13B, config=cfg,
                           cluster=A100_CLUSTER, problem=problem)
        dep = OpId(OpKind.F, 0, 0, 1)
        op = OpId(OpKind.F, 0, 0, 2)
        assert a100.comm_time(dep, op) < rtx.comm_time(dep, op)


class TestOverheads:
    def test_dp_sync_zero_without_replicas(self):
        cfg = ParallelConfig(dp=1, pp=8, spp=4, micro_batch_size=1)
        cost = make_cost(cfg, svpp_problem(8, 8, 4))
        assert cost.dp_sync_seconds() == 0.0

    def test_dp_sync_grows_with_stage_params(self):
        shallow = make_cost(ParallelConfig(dp=16, pp=4, spp=4),
                            svpp_problem(4, 8, 4))
        deep = make_cost(ParallelConfig(dp=8, pp=8, spp=4),
                         svpp_problem(8, 8, 4))
        assert shallow.dp_sync_seconds() > deep.dp_sync_seconds()

    def test_cp_overhead_exposed_on_pcie(self):
        cp = make_cost(ParallelConfig(dp=4, pp=8, cp=2),
                       PipelineProblem(num_stages=8, num_microbatches=8))
        plain = make_cost(ParallelConfig(dp=8, pp=8),
                          PipelineProblem(num_stages=8, num_microbatches=8))
        op = OpId(OpKind.F, 0, 0, 3)
        # Per-op time: CP halves the FLOPs but pays collectives and
        # kernel-shape penalties; it must not be a free 2x.
        assert cp.duration(op) > 0.6 * plain.duration(op)


class TestEfficiencyTokens:
    def test_cp_chunks_halve_kernel_tokens(self):
        cp = make_cost(ParallelConfig(dp=4, pp=8, cp=2),
                       PipelineProblem(num_stages=8, num_microbatches=8))
        assert cp.efficiency_tokens == cp.tokens_per_op // 2

    def test_spp_keeps_full_tokens(self):
        spp = make_cost()
        assert spp.efficiency_tokens == spp.tokens_per_op
