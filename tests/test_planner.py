"""Tests for the planner: evaluation, variant selection, grid search."""

import pytest

from repro.hardware import A100_CLUSTER, RTX4090_CLUSTER
from repro.model import GiB, LLAMA_13B, LLAMA_34B, LLAMA_7B
from repro.parallel import ParallelConfig
from repro.planner import evaluate_config, search_method, select_variant
from repro.planner.search import SearchResult


class TestEvaluateConfig:
    def test_paper_optimum_13b(self):
        """The Table 5 MEPipe config hits the paper's ballpark."""
        result = evaluate_config(
            "mepipe", LLAMA_13B, RTX4090_CLUSTER,
            ParallelConfig(dp=8, pp=8, spp=4), 128)
        assert not result.oom
        # Paper Table 9: 5852 ms, 116 TFLOPS, 35% MFU.
        assert result.iteration_time_s == pytest.approx(5.852, rel=0.10)
        assert result.mfu == pytest.approx(0.35, abs=0.04)

    def test_zb_oom_at_cp2(self):
        """Section 7.2: ZB runs out of memory at PP=8, CP=2."""
        result = evaluate_config(
            "zb", LLAMA_13B, RTX4090_CLUSTER,
            ParallelConfig(dp=4, pp=8, cp=2), 128)
        assert result.oom

    def test_dapple_fits_at_cp2(self):
        """...while DAPPLE fits in the same configuration."""
        result = evaluate_config(
            "dapple", LLAMA_13B, RTX4090_CLUSTER,
            ParallelConfig(dp=4, pp=8, cp=2), 128)
        assert not result.oom

    def test_invalid_device_count_raises(self):
        with pytest.raises(ValueError, match="cluster size"):
            evaluate_config("dapple", LLAMA_13B, RTX4090_CLUSTER,
                            ParallelConfig(dp=2, pp=8), 128)

    def test_zbv_fixed_vp_validated(self):
        """ZBV's implicit v=2 must satisfy chunk divisibility: 40 slots
        cannot split into 8*2 chunks... they can (16 divides 40? no).
        pp=8 with zbv means 16 chunks over 40 slots -> invalid."""
        with pytest.raises(ValueError, match="chunks"):
            evaluate_config("zbv", LLAMA_13B, RTX4090_CLUSTER,
                            ParallelConfig(dp=4, pp=8, cp=2), 128)

    def test_recompute_shrinks_activation_footprint(self):
        base = evaluate_config("dapple", LLAMA_13B, RTX4090_CLUSTER,
                               ParallelConfig(dp=4, pp=8, cp=2), 64)
        rc = evaluate_config("dapple", LLAMA_13B, RTX4090_CLUSTER,
                             ParallelConfig(dp=4, pp=8, cp=2, recompute=True), 64)
        assert rc.activation_bytes < 0.2 * base.activation_bytes
        assert rc.iteration_time_s > base.iteration_time_s  # 33% extra compute

    def test_a100_tp_config(self):
        result = evaluate_config(
            "dapple", LLAMA_13B, A100_CLUSTER,
            ParallelConfig(dp=4, pp=2, tp=4), 128)
        assert not result.oom
        assert result.mfu > 0.5  # NVLink TP keeps A100s busy

    def test_describe_mentions_oom(self):
        result = evaluate_config(
            "zb", LLAMA_13B, RTX4090_CLUSTER,
            ParallelConfig(dp=4, pp=8, cp=2), 128)
        assert "OOM" in result.describe()


class TestVariantSelection:
    def _cost(self, spp=16, pp=16):
        from repro.schedules.svpp import svpp_problem
        from repro.sim.cost import ClusterCost

        config = ParallelConfig(dp=64 // pp, pp=pp, spp=spp)
        problem = svpp_problem(pp, 8, spp)
        return problem, ClusterCost(
            spec=LLAMA_34B, config=config, cluster=RTX4090_CLUSTER,
            problem=problem)

    def test_rich_budget_returns_none(self):
        problem, cost = self._cost()
        assert select_variant(problem, cost, 10**13) is None

    def test_tight_budget_clamps_to_minimum(self):
        problem, cost = self._cost()
        f = select_variant(problem, cost, 1)
        assert f == problem.virtual_size * problem.num_slices

    def test_intermediate_budget_scales(self):
        problem, cost = self._cost()
        per_op = cost.activation_bytes_per_unit() * problem.activation_units_per_op
        f = select_variant(problem, cost, int(20.5 * per_op))
        assert f == 20

    def test_34b_variant_fits_24gb(self):
        """Section 7.4: s=16 gives a variant that satisfies the limit."""
        result = evaluate_config(
            "mepipe", LLAMA_34B, RTX4090_CLUSTER,
            ParallelConfig(dp=4, pp=16, spp=16), 128)
        assert not result.oom
        assert result.peak_memory_bytes < 24 * GiB


class TestSearch:
    def test_search_finds_paper_dapple_optimum(self):
        result = search_method("dapple", LLAMA_13B, RTX4090_CLUSTER, 128)
        assert result.best is not None
        cfg = result.best.config
        assert (cfg.pp, cfg.cp, cfg.vp, cfg.recompute) == (8, 2, 1, False)

    def test_search_respects_method_traits(self):
        result = search_method("mepipe", LLAMA_13B, RTX4090_CLUSTER, 64)
        assert result.best is not None
        assert result.best.config.cp == 1  # MEPipe replaces CP with SPP
        assert not result.best.config.recompute

    def test_search_result_reports_all_oom(self):
        empty = SearchResult(method="x", best=None, evaluated=[])
        assert not empty.all_oom  # nothing evaluated at all
