"""Tests for repro.hardware."""

import pytest

from repro.hardware import (
    A100_80GB,
    A100_CLUSTER,
    IB_100G,
    NVLINK,
    PCIE4,
    RTX4090_CLUSTER,
    RTX_4090,
    get_cluster,
    get_gpu,
    ring_all_gather_time,
    ring_all_reduce_time,
    sliced_layer_slowdown,
)
from repro.model import LLAMA_13B


class TestGPUSpecs:
    def test_table9_nominal_flops(self):
        assert RTX_4090.peak_fp16_tflops == 330.0
        assert A100_80GB.peak_fp16_tflops == 312.0

    def test_fp32_accum_penalty(self):
        """Section 7.6: a 4090 delivers about half an A100 effectively."""
        assert RTX_4090.effective_tflops == pytest.approx(165.0)
        assert A100_80GB.effective_tflops == pytest.approx(312.0)
        assert 0.45 < RTX_4090.effective_tflops / A100_80GB.effective_tflops < 0.6

    def test_price_ratio_is_5x(self):
        assert A100_80GB.server_price_usd / RTX_4090.server_price_usd == 5.0

    def test_lookup(self):
        assert get_gpu("rtx4090") is RTX_4090
        with pytest.raises(KeyError):
            get_gpu("h100")


class TestClusters:
    def test_sizes(self):
        assert RTX4090_CLUSTER.num_devices == 64
        assert A100_CLUSTER.num_devices == 32

    def test_link_selection(self):
        # Ranks 0 and 1 share a node; 0 and 8 do not.
        assert RTX4090_CLUSTER.link_between(0, 1) is PCIE4
        assert RTX4090_CLUSTER.link_between(0, 8) is IB_100G
        assert A100_CLUSTER.link_between(0, 7) is NVLINK

    def test_group_link_spanning_nodes(self):
        assert RTX4090_CLUSTER.group_link([0, 1, 2]) is PCIE4
        assert RTX4090_CLUSTER.group_link([0, 8]) is IB_100G

    def test_node_of_bounds(self):
        with pytest.raises(ValueError):
            RTX4090_CLUSTER.node_of(64)

    def test_cluster_price(self):
        # 8 x $30k vs 4 x $150k: the 2.5x cost-effectiveness denominator.
        assert RTX4090_CLUSTER.total_price_usd == 240_000
        assert A100_CLUSTER.total_price_usd == 600_000

    def test_lookup(self):
        assert get_cluster("a100-32") is A100_CLUSTER


class TestCommModel:
    def test_p2p_monotone_in_bytes(self):
        assert PCIE4.p2p_time(1 << 20) < PCIE4.p2p_time(1 << 24)

    def test_p2p_zero_bytes_free(self):
        assert PCIE4.p2p_time(0) == 0.0

    def test_allreduce_group1_free(self):
        assert ring_all_reduce_time(1 << 20, 1, PCIE4) == 0.0

    def test_allreduce_approaches_2x_payload(self):
        t = ring_all_reduce_time(10**9, 64, NVLINK)
        wire = 2 * 10**9 / (NVLINK.bandwidth_gbps * 1e9)
        assert t == pytest.approx(wire, rel=0.10)

    def test_allgather_cheaper_than_allreduce(self):
        n = 10**8
        assert ring_all_gather_time(n, 8, PCIE4) < ring_all_reduce_time(n, 8, PCIE4)


class TestEfficiency:
    def test_spp8_slowdown_matches_paper(self):
        """Section 7.3: 13B layer slows by ~12.6% at SPP=8."""
        assert sliced_layer_slowdown(LLAMA_13B, 8) == pytest.approx(1.126, abs=0.01)

    def test_slowdown_monotone(self):
        values = [sliced_layer_slowdown(LLAMA_13B, s) for s in (1, 2, 4, 8, 16)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(1.0)
