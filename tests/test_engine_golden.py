"""Golden equivalence: every engine replays the fixed-point engine.

The vectorized wavefront executor (``"event"``) and the event-driven
heap replay (``"heap"``) must be pure speedups — not approximations —
of the original fixed-point replay.  These tests compare the engines
bit-for-bit (op records, makespan, per-stage
busy time and activation peaks) across the acceptance grid from
``tests/test_verify.py``, under the uniform cost model, an imbalanced
one, the calibrated cluster model, and a custom model that charges
same-stage communication (exercising the executor's promise to probe
``comm_time`` on every dependency edge).
"""

import pytest

from repro.hardware.cluster import RTX4090_CLUSTER
from repro.model.spec import LLAMA_13B
from repro.parallel.strategies import ParallelConfig
from repro.schedules.base import OpId
from repro.schedules.methods import build_problem, build_schedule
from repro.sim.cost import ClusterCost, UniformCost
from repro.sim.executor import simulate

from tests.test_verify import golden_grid


def assert_bitwise_equal(a, b):
    assert a.records == b.records
    assert a.makespan == b.makespan
    assert [s.busy_time for s in a.stages] == [s.busy_time for s in b.stages]
    assert [s.peak_activation_units for s in a.stages] == [
        s.peak_activation_units for s in b.stages
    ]
    assert [s.op_count for s in a.stages] == [s.op_count for s in b.stages]


@pytest.mark.parametrize(
    "method,p,n,s,v,g", list(golden_grid()), ids=lambda val: str(val)
)
def test_engines_agree_on_golden_grid(method, p, n, s, v, g):
    problem = build_problem(
        method, p, n, num_slices=s, virtual_size=v, wgrad_gemms=g
    )
    schedule = build_schedule(method, problem)
    cost = UniformCost(problem, tw=0.5, imbalance=tuple(
        1.0 + 0.1 * i for i in range(s)
    ))
    event = simulate(schedule, cost, engine="event")
    fixed = simulate(schedule, cost, engine="fixed-point")
    assert_bitwise_equal(event, fixed)


def test_engines_agree_under_cluster_cost():
    config = ParallelConfig(dp=8, pp=8, spp=4)
    problem = build_problem("mepipe", 8, 16, num_slices=4, wgrad_gemms=2)
    cost = ClusterCost(
        spec=LLAMA_13B,
        config=config,
        cluster=RTX4090_CLUSTER,
        problem=problem,
    )
    schedule = build_schedule("mepipe", problem, cost=cost)
    fixed = simulate(schedule, cost, engine="fixed-point")
    for engine in ("event", "heap"):
        assert_bitwise_equal(simulate(schedule, cost, engine=engine), fixed)


class _EdgeTaxCost:
    """Charges every dependency edge — including same-stage ones — and
    is deliberately *not* declared micro-batch invariant."""

    def __init__(self, problem):
        self.problem = problem

    def duration(self, op: OpId) -> float:
        return 1.0 + 0.25 * (op.microbatch % 3)

    def comm_time(self, dep: OpId, op: OpId) -> float:
        return 0.125 + 0.0625 * ((dep.microbatch + op.chunk) % 2)

    def act_units(self, op: OpId) -> float:
        return 1.0


def test_engines_agree_with_edge_charging_cost():
    problem = build_problem("mepipe", 4, 8, num_slices=2, wgrad_gemms=2)
    schedule = build_schedule("mepipe", problem)
    cost = _EdgeTaxCost(problem)
    fixed = simulate(schedule, cost, engine="fixed-point")
    for engine in ("event", "heap"):
        assert_bitwise_equal(simulate(schedule, cost, engine=engine), fixed)


def test_unknown_engine_rejected():
    problem = build_problem("dapple", 2, 4)
    schedule = build_schedule("dapple", problem)
    with pytest.raises(ValueError, match="unknown simulation engine"):
        simulate(schedule, UniformCost(problem), engine="bogus")


def test_stage_records_cached_and_sorted():
    problem = build_problem("mepipe", 4, 8, num_slices=2, wgrad_gemms=2)
    schedule = build_schedule("mepipe", problem)
    cost = UniformCost(problem)
    for engine in ("event", "heap", "fixed-point"):
        result = simulate(schedule, cost, engine=engine)
        for stage in range(problem.num_stages):
            records = result.stage_records(stage)
            assert records is result.stage_records(stage)  # cached
            starts = [r.start for r in records]
            assert starts == sorted(starts)
            assert len(records) == result.stages[stage].op_count
