"""Tests of the model substrate: slice invariance, W-split exactness."""

import numpy as np
import pytest

from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import Adam, build_model, sequential_step

SPEC = tiny_spec(hidden_size=32, num_layers=3, num_heads=4,
                 ffn_hidden_size=64, vocab_size=23, seq_length=12)


def data(n=2, b=2, seed=0):
    return token_batches(SPEC.vocab_size, n, b, SPEC.seq_length, seed=seed)


class TestBuild:
    def test_component_count_matches_balanced_slots(self):
        model = build_model(SPEC)
        assert len(model.components) == SPEC.balanced_layer_count()

    def test_deterministic_init(self):
        a, b = build_model(SPEC, seed=3), build_model(SPEC, seed=3)
        for k, v in a.named_params().items():
            assert np.array_equal(v, b.named_params()[k])

    def test_different_seeds_differ(self):
        a, b = build_model(SPEC, seed=3), build_model(SPEC, seed=4)
        assert not np.array_equal(a.named_params()["1.wq"],
                                  b.named_params()["1.wq"])

    def test_gqa_parameter_shapes(self):
        from repro.model import ModelSpec
        gqa = ModelSpec(name="gqa", hidden_size=32, num_layers=2, num_heads=4,
                        num_kv_heads=2, ffn_hidden_size=64)
        model = build_model(gqa)
        layer = model.components[1]
        assert layer.params["wk"].shape == (32, 16)  # 2 kv heads x 8 dim
        assert layer.params["wq"].shape == (32, 32)

    def test_partition_balanced(self):
        model = build_model(SPEC)  # 5 components
        chunks = model.partition(2)
        assert [len(c) for c in chunks] == [3, 2]
        with pytest.raises(ValueError):
            model.partition(10)


class TestSliceInvariance:
    def test_loss_independent_of_slicing(self):
        tokens, targets = data()
        losses = []
        for s in (1, 2, 3, 4):
            model = build_model(SPEC, seed=7)
            losses.append(sequential_step(model, tokens, targets, num_slices=s))
        for loss in losses[1:]:
            assert loss == pytest.approx(losses[0], abs=1e-12)

    def test_gradients_independent_of_slicing(self):
        """The KV-cache slice execution is exact, not approximate."""
        tokens, targets = data()
        ref = build_model(SPEC, seed=7)
        sequential_step(ref, tokens, targets, num_slices=1)
        ref_grads = ref.named_grads()
        for s in (2, 4, 6):
            model = build_model(SPEC, seed=7)
            sequential_step(model, tokens, targets, num_slices=s)
            for k, v in model.named_grads().items():
                assert np.allclose(v, ref_grads[k], atol=1e-13), k

    def test_indivisible_slicing_rejected(self):
        tokens, targets = data()
        with pytest.raises(ValueError):
            sequential_step(build_model(SPEC), tokens, targets, num_slices=5)


class TestLossQuality:
    def test_initial_loss_near_log_vocab(self):
        tokens, targets = data()
        model = build_model(SPEC, seed=1)
        loss = sequential_step(model, tokens, targets)
        assert loss == pytest.approx(np.log(SPEC.vocab_size), rel=0.25)

    def test_adam_training_reduces_loss(self):
        tokens, targets = data(n=2, b=2, seed=9)
        model = build_model(SPEC, seed=2)
        optimizer = Adam(model, lr=3e-3)
        first = sequential_step(model, tokens, targets)
        optimizer.step()
        losses = [first]
        for _unused in range(8):
            losses.append(sequential_step(model, tokens, targets))
            optimizer.step()
        assert losses[-1] < 0.8 * losses[0]

    def test_adam_zeroes_grads(self):
        tokens, targets = data()
        model = build_model(SPEC, seed=2)
        optimizer = Adam(model)
        sequential_step(model, tokens, targets)
        optimizer.step()
        assert all(np.all(g == 0) for g in model.named_grads().values())


class TestWgradDeferral:
    def test_deferred_wgrad_equals_immediate(self):
        """Running all W GEMMs at the very end (maximal deferral)
        produces identical gradients — the MEPipe soundness property."""
        tokens, targets = data()
        ref = build_model(SPEC, seed=7)
        sequential_step(ref, tokens, targets, num_slices=2)

        model = build_model(SPEC, seed=7)
        model.head.loss_scale = 1.0 / tokens.size
        deferred = []
        for mb in range(tokens.shape[0]):
            t = SPEC.seq_length // 2
            for sl in range(2):
                model.head.set_targets(mb, sl, targets[mb, :, sl*t:(sl+1)*t])
                x = tokens[mb, :, sl*t:(sl+1)*t]
                for comp in model.components:
                    x = comp.forward(mb, sl, x)
            for sl in reversed(range(2)):
                dy = None
                for comp in reversed(model.components):
                    dy = comp.backward(mb, sl, dy)
                    deferred.extend(comp.pop_wgrad_tasks(mb, sl))
        for task in deferred:
            task()
        for k, v in model.named_grads().items():
            assert np.allclose(v, ref.named_grads()[k], atol=1e-13), k
