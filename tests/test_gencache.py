"""The schedule-generation cache: byte-identity, key safety, telemetry.

``repro.schedules.gencache`` memoizes greedy constructions process-wide,
keyed by (problem, policy, name, cost key tables).  The contract:

* a hit returns the previously constructed :class:`Schedule` object,
  and a cold regeneration of the same inputs is byte-identical to it —
  caching is invisible to every downstream consumer;
* keys never alias across differing problems, policies, or cost key
  tables, and non-micro-batch-invariant cost models bypass the cache
  entirely;
* the planner folds ``GENERATOR_VERSION`` into SweepCache fingerprints
  (schema 3) and surfaces hit/miss counters on the telemetry bus.
"""

import random

import pytest

from repro.hardware.cluster import RTX4090_CLUSTER
from repro.model.spec import LLAMA_13B
from repro.obs.sinks import MemorySink
from repro.parallel.strategies import ParallelConfig
from repro.planner import evaluate as planner_evaluate
from repro.planner.parallel import (
    CACHE_SCHEMA,
    EvalTask,
    eval_fingerprint,
    evaluate_tasks,
)
from repro.schedules import gencache
from repro.schedules.base import PipelineProblem
from repro.schedules.graph import compiled_graph
from repro.schedules.greedy import GreedyPolicy, greedy_schedule
from repro.sim.cost import UniformCost

GRAPH_FIELDS = (
    "fingerprint", "ops", "kind", "cell", "gemm", "stage", "pos",
    "stage_bounds", "pred_indptr", "pred", "pred_cross",
    "succ_indptr", "succ",
)


@pytest.fixture(autouse=True)
def fresh_cache():
    gencache.clear()
    gencache.set_enabled(True)
    yield
    gencache.set_enabled(None)
    gencache.clear()


def assert_same_schedule(a, b):
    assert [pr.ops for pr in a.programs] == [pr.ops for pr in b.programs]
    ga, gb = compiled_graph(a), compiled_graph(b)
    for fld in GRAPH_FIELDS:
        assert getattr(ga, fld) == getattr(gb, fld), fld


def random_cell(rng):
    """One random (problem, policy, cost) generation input."""
    split = rng.random() < 0.7
    problem = PipelineProblem(
        num_stages=rng.choice([2, 3, 4]),
        num_microbatches=rng.randint(3, 8),
        num_slices=rng.choice([1, 2, 4]),
        virtual_size=rng.choice([1, 2]),
        split_backward=split,
        wgrad_gemms=rng.choice([1, 2]) if split else 1,
        chunk_placement=rng.choice(["interleaved", "vshape"]),
    )
    policy = GreedyPolicy(
        forward_priority=rng.choice(["round_desc", "mb_major", "plain"]),
        backward_priority=rng.choice(["children", "fifo"]),
        fill_with_wgrad=rng.random() < 0.8,
        wgrad_defer_samples=rng.choice([0.0, 1.0, 1.5]),
    )
    cost = rng.choice(
        [
            None,
            UniformCost(
                problem,
                tf=1.0 + rng.random(),
                tb=1.0 + rng.random(),
                tw=rng.random(),
            ),
        ]
    )
    return problem, policy, cost


# ----------------------------------------------------------------------
# Byte-identity of hits
# ----------------------------------------------------------------------
def test_hits_are_byte_identical_to_cold_generation():
    """Property over a seeded random grid: a cache hit returns the
    cached object, and that object is byte-identical to a cold build."""
    rng = random.Random(20260808)
    for _ in range(12):
        problem, policy, cost = random_cell(rng)
        try:
            first = greedy_schedule(problem, policy, cost)
        except Exception:
            continue  # wedged cells are covered by the golden suite
        again = greedy_schedule(problem, policy, cost)
        assert again is first  # a hit shares the construction

        gencache.clear()
        gencache.set_enabled(False)
        cold = greedy_schedule(problem, policy, cost)
        gencache.set_enabled(True)
        assert cold is not first
        assert_same_schedule(first, cold)


def test_hit_and_miss_counters():
    problem = PipelineProblem(2, 4, 2, 1)
    greedy_schedule(problem)
    assert gencache.stats() == {"hits": 0, "misses": 1, "size": 1}
    greedy_schedule(problem)
    assert gencache.stats()["hits"] == 1
    h0, m0 = gencache.snapshot()
    gencache.record_remote(3, 5)
    assert gencache.snapshot() == (h0 + 3, m0 + 5)


# ----------------------------------------------------------------------
# Key safety: no aliasing, equal-table sharing, bypasses
# ----------------------------------------------------------------------
def test_key_separates_problem_policy_and_cost_tables():
    problem = PipelineProblem(2, 4, 2, 1)
    policy = GreedyPolicy()
    base = gencache.cache_key(problem, policy, "greedy", None)
    assert base is not None
    assert base != gencache.cache_key(
        PipelineProblem(2, 5, 2, 1), policy, "greedy", None
    )
    assert base != gencache.cache_key(
        problem, GreedyPolicy(cap_slope=0), "greedy", None
    )
    assert base != gencache.cache_key(problem, policy, "other", None)
    assert base != gencache.cache_key(
        problem, policy, "greedy", UniformCost(problem, tf=2.0)
    )


def test_equal_key_tables_share_a_key():
    """Distinct cost objects with identical key tables are the same
    deterministic computation — sharing is the point of the cache."""
    problem = PipelineProblem(2, 4, 2, 1)
    policy = GreedyPolicy()
    assert gencache.cache_key(
        problem, policy, "greedy", None
    ) == gencache.cache_key(problem, policy, "greedy", UniformCost(problem))


class _NonInvariantCost:
    """A cost model that refuses the micro-batch-invariance contract."""

    microbatch_invariant = False

    def __init__(self, problem):
        self._inner = UniformCost(problem)

    def duration(self, op):
        return self._inner.duration(op) * (1.0 + 0.01 * op.microbatch)

    def comm_time(self, dep, op):
        return self._inner.comm_time(dep, op)

    def act_units(self, op):
        return self._inner.act_units(op)


def test_non_invariant_cost_bypasses_the_cache():
    problem = PipelineProblem(2, 4, 2, 1)
    cost = _NonInvariantCost(problem)
    assert gencache.cache_key(problem, GreedyPolicy(), "greedy", cost) is None
    a = greedy_schedule(problem, cost=cost)
    b = greedy_schedule(problem, cost=cost)
    assert b is not a  # never served from the cache
    assert gencache.stats() == {"hits": 0, "misses": 0, "size": 0}


def test_env_knob_disables_the_cache(monkeypatch):
    monkeypatch.setenv("REPRO_GEN_CACHE", "0")
    gencache.set_enabled(None)  # re-read the environment
    assert not gencache.enabled()
    assert gencache.cache_key(
        PipelineProblem(2, 4, 1, 1), GreedyPolicy(), "greedy", None
    ) is None
    monkeypatch.setenv("REPRO_GEN_CACHE", "1")
    gencache.set_enabled(None)
    assert gencache.enabled()


def test_distinct_problems_occupy_distinct_entries_and_clear_resets():
    problems = [PipelineProblem(2, n, 1, 1) for n in range(2, 6)]
    for problem in problems:
        greedy_schedule(problem)
    assert gencache.stats()["size"] == len(problems)
    gencache.clear()
    assert gencache.stats() == {"hits": 0, "misses": 0, "size": 0}


# ----------------------------------------------------------------------
# Planner integration: fingerprints and telemetry
# ----------------------------------------------------------------------
def _task():
    return EvalTask(
        "mepipe", LLAMA_13B, RTX4090_CLUSTER,
        ParallelConfig(dp=8, pp=8, spp=2), 64,
    )


def test_generator_version_is_in_sweep_fingerprints(monkeypatch):
    assert CACHE_SCHEMA == 4
    before = eval_fingerprint(_task())
    monkeypatch.setattr(gencache, "GENERATOR_VERSION", "greedy-test-bump")
    assert eval_fingerprint(_task()) != before


def test_evaluate_tasks_surfaces_gen_cache_counters():
    """A sweep whose constructions replay from the gen cache emits the
    gen_cache_hits counter and a per-cell 'gen cache hit' instant."""
    task = _task()
    # The per-process schedule memo sits above the gen cache; drop it
    # around both sweeps so the first actually populates the gen cache
    # (earlier tests may have warmed the memo for this very cell) and
    # the second reconstructs and gives the gen cache the lookups.
    planner_evaluate._cached_schedule.cache_clear()
    (warm,) = evaluate_tasks([task])  # populates the gen cache
    planner_evaluate._cached_schedule.cache_clear()

    h0, _ = gencache.snapshot()
    sink = MemorySink()
    (replayed,) = evaluate_tasks([task], sink=sink)
    h1, _ = gencache.snapshot()

    assert replayed == warm  # caching never changes the outcome
    assert h1 > h0
    assert sink.counter_value("gen_cache_hits") == float(h1 - h0)
    hits = [e for e in sink.instants() if e.name.startswith("gen cache hit")]
    assert len(hits) == 1
    assert dict(hits[0].args)["hits"] == h1 - h0
