"""Tests for repro.model.flops."""

import pytest

from repro.model import (
    LLAMA_7B,
    LLAMA_13B,
    LLAMA_34B,
    attention_score_flops,
    attention_score_share,
    layer_slice_flops,
    model_train_flops,
    slice_imbalance_ratio,
    tiny_spec,
)


class TestAttentionScoreFlops:
    def test_zero_tokens(self):
        assert attention_score_flops(LLAMA_7B, 0, 0) == 0

    def test_slices_sum_to_full(self):
        """Causal attention work is conserved under slicing."""
        spec = LLAMA_13B
        full = attention_score_flops(spec, spec.seq_length, 0)
        for s in (2, 4, 8, 16):
            t = spec.seq_length // s
            sliced = sum(attention_score_flops(spec, t, i * t) for i in range(s))
            assert sliced == full

    def test_later_slices_cost_more(self):
        spec = LLAMA_7B
        t = spec.seq_length // 4
        costs = [attention_score_flops(spec, t, i * t) for i in range(4)]
        assert costs == sorted(costs)
        assert costs[3] > 3 * costs[0]

    def test_quadratic_in_sequence(self):
        spec = tiny_spec()
        a = attention_score_flops(spec, 128, 0)
        b = attention_score_flops(spec, 256, 0)
        assert 3.5 < b / a < 4.5


class TestLayerSliceFlops:
    def test_wgrad_balanced_across_slices(self):
        """Weight-gradient GEMMs do not depend on the slice offset."""
        spec = LLAMA_13B
        t = spec.seq_length // 8
        w = {layer_slice_flops(spec, t, i * t).backward_wgrad for i in range(8)}
        assert len(w) == 1

    def test_dgrad_carries_imbalance(self):
        spec = LLAMA_13B
        t = spec.seq_length // 8
        first = layer_slice_flops(spec, t, 0)
        last = layer_slice_flops(spec, t, 7 * t)
        assert last.backward_dgrad > first.backward_dgrad
        assert last.backward_wgrad == first.backward_wgrad

    def test_backward_total_is_sum(self):
        f = layer_slice_flops(LLAMA_7B, 512, 1024)
        assert f.backward_total == f.backward_dgrad + f.backward_wgrad

    def test_backward_roughly_twice_forward(self):
        f = layer_slice_flops(LLAMA_13B, 4096, 0)
        assert 1.8 < f.backward_total / f.forward < 2.4


class TestPaperAnchors:
    def test_attention_share_below_10pct_for_7b(self):
        """Section 4.4: attention score < 10% of computation for 7B@4096."""
        assert attention_score_share(LLAMA_7B) < 0.10

    def test_attention_share_shrinks_with_model_size(self):
        """Section 4.4: the proportion is even smaller for larger models."""
        shares = [attention_score_share(m) for m in (LLAMA_7B, LLAMA_13B, LLAMA_34B)]
        assert shares[0] > shares[1] > shares[2]

    def test_figure7_slice0_near_75pct_of_slice1(self):
        """Figure 7 assumes slice 0 forward ~75% of slice 1 with s=2."""
        ratio = slice_imbalance_ratio(LLAMA_13B, 2, 0)
        assert 0.80 < ratio < 1.0  # mild imbalance, shrinking with size

    def test_model_train_flops_positive_and_scales(self):
        one = model_train_flops(LLAMA_13B, 4096)
        two = model_train_flops(LLAMA_13B, 8192)
        assert two > 2 * one > 0  # superlinear from attention

    def test_train_flops_near_6x_params(self):
        """Standard 6*N FLOPs/token approximation holds within ~20%."""
        spec = LLAMA_13B
        per_token = model_train_flops(spec, spec.seq_length) / spec.seq_length
        six_n = 6 * spec.total_params()
        assert per_token == pytest.approx(six_n, rel=0.2)
