"""Tests for the network-validation, scaling, and section-9 experiments."""

import pytest

from repro.experiments import REGISTRY, network, scaling, section9


class TestNetworkValidation:
    def test_static_model_tracks_queued_replay(self):
        report = network.run()
        for row in report.rows:
            delta = abs(float(row[3].rstrip("%").lstrip("+")))
            assert delta < 5.0, row

    def test_all_methods_present(self):
        report = network.run()
        assert [r[0] for r in report.rows] == ["mepipe", "dapple", "zb"]


class TestScaling:
    def test_mepipe_wins_at_every_scale(self):
        report = scaling.run()
        for row in report.rows:
            assert float(row[4].rstrip("x")) > 1.3

    def test_mfu_declines_with_scale_for_both(self):
        report = scaling.run()
        zb = [float(r[2].rstrip("%")) for r in report.rows]
        mepipe = [float(r[3].rstrip("%")) for r in report.rows]
        assert zb == sorted(zb, reverse=True)
        assert mepipe == sorted(mepipe, reverse=True)
        # ...but MEPipe keeps a large absolute lead everywhere.
        for z, m in zip(zb, mepipe):
            assert m - z > 8.0


class TestSection9Reports:
    def test_reliability_scenarios_ordered(self):
        report = section9.run_reliability()
        overheads = [float(c.rstrip("%")) for c in report.column("overhead")]
        assert overheads == sorted(overheads, reverse=True)
        assert overheads[1] < 5.0

    def test_tco_parity_at_paper_price(self):
        report = section9.run_tco()
        parity = float(report.rows[1][3].split()[0])
        assert parity == pytest.approx(24.0, abs=5.0)


class TestRegistryComplete:
    def test_extension_experiments_registered(self):
        for key in ("abl-partition", "sec9-reliability", "sec9-tco",
                    "net-validate", "scaling"):
            assert key in REGISTRY
