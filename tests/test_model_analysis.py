"""The model analyzer proves every E0 (method × partition) pair clean.

Covers the clean path of :mod:`repro.analysis`: shape/interface
inference, gradient coverage, and hazard freedom over the acceptance
grid, plus the runtime/planner/CLI wiring (analyzer-clean gate at
``PipelineRuntime.run`` entry with fingerprint caching, the planner's
interface rejection, and the ``check-model`` subcommand).  Seeded
defect injection lives in ``test_analysis_mutations.py``.
"""

import json

import pytest

from repro.analysis import (
    MODEL_RULES,
    ModelAnalysisError,
    analyze_model,
    analyze_spec,
    ensure_model_verified,
    interface_report,
    partition_from_model,
    partition_from_spec,
)
from repro.model.spec import tiny_spec
from repro.nn import build_model
from repro.schedules.methods import build_problem, build_schedule

#: The E0 acceptance grid: every method in its reference configuration.
SETUPS = [
    ("dapple", {}),
    ("terapipe", {"num_slices": 4}),
    ("vpp", {"virtual_size": 2}),
    ("zb", {}),
    ("zbv", {}),
    ("svpp", {"num_slices": 4, "virtual_size": 2}),
    ("mepipe", {"num_slices": 4, "wgrad_gemms": 3}),
]

SPEC = tiny_spec(
    hidden_size=32, num_layers=6, num_heads=4, ffn_hidden_size=64,
    vocab_size=31, seq_length=16,
)


def built(method: str, kwargs: dict):
    problem = build_problem(method, 4, 4, **kwargs)
    return build_schedule(method, problem)


class TestCleanGrid:
    @pytest.mark.parametrize("method,kwargs", SETUPS)
    def test_live_model_analyzes_clean(self, method, kwargs):
        schedule = built(method, kwargs)
        model = build_model(SPEC, seed=11)
        report = analyze_model(model, schedule)
        assert report.ok, report.render_text()
        assert not report.findings
        assert tuple(report.checked_rules) == MODEL_RULES

    @pytest.mark.parametrize("method,kwargs", SETUPS)
    def test_bare_spec_analyzes_clean(self, method, kwargs):
        report = analyze_spec(SPEC, built(method, kwargs))
        assert report.ok, report.render_text()

    @pytest.mark.parametrize("method,kwargs", SETUPS)
    def test_spec_and_model_abstractions_agree(self, method, kwargs):
        # The planner's array-free abstraction must describe exactly the
        # partition the runtime executes.
        schedule = built(method, kwargs)
        chunks = schedule.problem.num_chunks
        model = build_model(SPEC, seed=11)
        assert partition_from_spec(SPEC, chunks) == partition_from_model(
            model, chunks
        )

    def test_gqa_model_analyzes_clean(self):
        import dataclasses

        spec = dataclasses.replace(SPEC, num_kv_heads=2)
        report = analyze_spec(spec, built("mepipe", dict(SETUPS[-1][1])))
        assert report.ok, report.render_text()


class TestRuntimeGate:
    def test_clean_pair_is_cached_on_schedule(self, monkeypatch):
        schedule = built("mepipe", dict(SETUPS[-1][1]))
        model = build_model(SPEC, seed=11)
        ensure_model_verified(model, schedule)
        assert getattr(schedule, "_analysis_token", None) is not None

        # A second entry with the same pair must not re-analyze.
        import repro.analysis.core as core

        def boom(*_a, **_k):  # pragma: no cover - would fail the test
            raise AssertionError("re-analyzed a cached pair")

        monkeypatch.setattr(core, "analyze_partition", boom)
        ensure_model_verified(model, schedule)

    def test_different_model_invalidates_cache(self):
        schedule = built("dapple", {})
        model = build_model(SPEC, seed=11)
        ensure_model_verified(model, schedule)
        wider = tiny_spec(
            hidden_size=64, num_layers=6, num_heads=4, ffn_hidden_size=64,
            vocab_size=31, seq_length=16,
        )
        other = build_model(wider, seed=11)
        token = schedule._analysis_token
        ensure_model_verified(other, schedule)
        assert schedule._analysis_token != token

    def test_runtime_rejects_spliced_incompatible_layer(self):
        # A decoder layer from a wider model spliced into the pipeline
        # must be rejected statically, before any GEMM runs.
        from repro.data import token_batches
        from repro.pipeline import PipelineRuntime

        schedule = built("mepipe", dict(SETUPS[-1][1]))
        model = build_model(SPEC, seed=11)
        wider = tiny_spec(
            hidden_size=64, num_layers=6, num_heads=4, ffn_hidden_size=64,
            vocab_size=31, seq_length=16,
        )
        model.components[3] = build_model(wider, seed=11).components[3]
        tokens, targets = token_batches(SPEC.vocab_size, 4, 2,
                                        SPEC.seq_length, seed=5)
        with pytest.raises(ModelAnalysisError) as excinfo:
            PipelineRuntime(model, tokens, targets).run(schedule)
        assert "SH003" in str(excinfo.value)


class TestPlannerGate:
    def test_interface_report_clean_for_preset(self):
        from repro.model import get_model

        problem = build_problem("mepipe", 4, 8, num_slices=4, wgrad_gemms=2)
        report = interface_report(get_model("13b"), problem)
        assert report.ok, report.render_text()

    def test_uncuttable_partition_raises(self):
        shallow = tiny_spec(num_layers=2)  # 4 components
        problem = build_problem("vpp", 4, 4, virtual_size=2)  # 8 chunks
        with pytest.raises(ValueError, match="cannot cut"):
            interface_report(shallow, problem)


class TestCheckModelCLI:
    def test_grid_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["check-model", "grid"]) == 0
        out = capsys.readouterr().out
        assert out.count("clean") == len(SETUPS)

    def test_json_report(self, capsys):
        from repro.cli import main

        assert main(["check-model", "mepipe", "--slices", "4",
                     "--wgrad-gemms", "3", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["checked_rules"] == list(MODEL_RULES)

    def test_json_shorthand_flag(self, capsys):
        from repro.cli import main

        assert main(["check-model", "dapple", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_grid_json_is_a_report_list(self, capsys):
        from repro.cli import main

        assert main(["check-model", "grid", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [d["ok"] for d in data] == [True] * len(SETUPS)

    def test_rule_subset(self, capsys):
        from repro.cli import main

        assert main(["check-model", "dapple", "--rules", "sh001,gc001"]) == 0
        assert "2 rules" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        from repro.cli import main

        assert main(["check-model", "dapple", "--rules", "XX999"]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_unknown_method_exits_two(self, capsys):
        from repro.cli import main

        assert main(["check-model", "bogus"]) == 2
        capsys.readouterr()

    def test_verify_gained_format_flag(self, capsys):
        # The shared helper must keep verify's --json contract and add
        # the long-form switch.
        from repro.cli import main

        assert main(["verify", "dapple", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True
