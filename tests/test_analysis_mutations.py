"""Seeded defect injection against the model analyzer.

Each test corrupts one ingredient of the joined (partition, schedule)
program — a component's widths, a wgrad task queue, a scheduled W op, a
happens-before edge — the way a component-level bug would (a backward
that forgets to queue a GEMM, a mis-built layer, a runtime that drops
an ordering), and asserts the analyzer names the defect with the exact
rule id and a witness that cites the participating ops.  The clean path
always re-derives these structures from the model and the
fingerprint-cached graph, so mutants never leak into real runs.
"""

import dataclasses
import random

import pytest

from repro.analysis import (
    analyze_partition,
    build_program,
    check_coverage,
    check_hazards,
    partition_from_spec,
)
from repro.analysis.ir import BATCH, SLICE_LEN, SymTensor
from repro.analysis.shapes import component_transfer
from repro.model.spec import tiny_spec
from repro.schedules.graph import compiled_graph
from repro.schedules.methods import build_problem, build_schedule

SPEC = tiny_spec(
    hidden_size=32, num_layers=6, num_heads=4, ffn_hidden_size=64,
    vocab_size=31, seq_length=16,
)
WIDE = tiny_spec(
    hidden_size=64, num_layers=6, num_heads=4, ffn_hidden_size=64,
    vocab_size=31, seq_length=16,
)

SEEDS = [0, 1, 2]


def built(method: str, **kwargs):
    problem = build_problem(method, 4, 4, **kwargs)
    return build_schedule(method, problem)


def mepipe_program():
    schedule = built("mepipe", num_slices=4, wgrad_gemms=3)
    partition = partition_from_spec(SPEC, schedule.problem.num_chunks)
    return build_program(partition, compiled_graph(schedule)), schedule


# ----------------------------------------------------------------------
# Shape pass (SH rules)
# ----------------------------------------------------------------------
class TestShapeMutations:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mismatched_hidden_dims_is_sh003_with_channel_witness(self, seed):
        schedule = built("mepipe", num_slices=4, wgrad_gemms=3)
        chunks = schedule.problem.num_chunks
        partition = partition_from_spec(SPEC, chunks)
        wide = partition_from_spec(WIDE, chunks)
        # Swap one interior, decoder-only chunk for its wide twin: both
        # of its boundary interfaces now disagree on hidden width.
        c = random.Random(seed).choice([1, 2])
        mutant = dataclasses.replace(
            partition,
            chunks=tuple(
                wide.chunks[i] if i == c else chunk
                for i, chunk in enumerate(partition.chunks)
            ),
        )
        report = analyze_partition(mutant, schedule)
        assert not report.ok
        assert report.rule_ids() == {"SH003"}
        findings = report.by_rule("SH003")
        assert len(findings) == 2  # entry and exit boundary of chunk c
        rendered = "\n".join(f.render() for f in findings)
        assert f"F0.0c{c}" in rendered
        assert "batch×slice_len×64" in rendered and "batch×slice_len×32" in rendered
        # One check covers both channel directions.
        assert "dy payload disagrees identically" in rendered

    def test_dropped_embedding_is_sh001_pipeline_input(self):
        schedule = built("mepipe", num_slices=4, wgrad_gemms=3)
        partition = partition_from_spec(SPEC, schedule.problem.num_chunks)
        headless = dataclasses.replace(
            partition.chunks[0],
            components=partition.chunks[0].components[1:],
        )
        mutant = dataclasses.replace(
            partition, chunks=(headless,) + partition.chunks[1:]
        )
        report = analyze_partition(mutant, schedule)
        assert report.rule_ids() == {"SH001"}
        assert "token ids" in report.findings[0].message

    @pytest.mark.parametrize("seed", SEEDS)
    def test_wrong_param_shape_is_sh004(self, seed):
        schedule = built("mepipe", num_slices=4, wgrad_gemms=3)
        partition = partition_from_spec(SPEC, schedule.problem.num_chunks)
        rng = random.Random(seed)
        c = rng.choice([1, 2])
        chunk = partition.chunks[c]
        comp = chunk.components[0]
        pname, pshape = comp.param_shapes[rng.randrange(len(comp.param_shapes))]
        bad = dataclasses.replace(
            comp,
            param_shapes=tuple(
                (n, tuple(d + 1 for d in s)) if n == pname else (n, s)
                for n, s in comp.param_shapes
            ),
        )
        mutant = dataclasses.replace(
            partition,
            chunks=tuple(
                dataclasses.replace(ch, components=(bad,) + ch.components[1:])
                if i == c else ch
                for i, ch in enumerate(partition.chunks)
            ),
        )
        report = analyze_partition(mutant, schedule)
        assert "SH004" in report.rule_ids()
        rendered = "\n".join(f.render() for f in report.by_rule("SH004"))
        assert pname in rendered and str(pshape) in rendered

    def test_fractional_gqa_group_is_sh004(self):
        schedule = built("dapple")
        partition = partition_from_spec(SPEC, schedule.problem.num_chunks)
        chunk = partition.chunks[1]
        bad = dataclasses.replace(chunk.components[0], num_kv_heads=3)
        mutant = dataclasses.replace(
            partition,
            chunks=tuple(
                dataclasses.replace(ch, components=(bad,) + ch.components[1:])
                if i == 1 else ch
                for i, ch in enumerate(partition.chunks)
            ),
        )
        report = analyze_partition(mutant, schedule)
        assert "SH004" in report.rule_ids()
        assert any(
            "GQA group" in f.message for f in report.by_rule("SH004")
        )

    def test_dtype_mismatch_is_sh002(self):
        partition = partition_from_spec(SPEC, 4)
        embedding = partition.chunks[0].components[0]
        # Same rank as token ids, wrong dtype: only SH002 can tell.
        findings, _out = component_transfer(
            embedding, SymTensor((BATCH, SLICE_LEN), "f64")
        )
        assert [f.rule_id for f in findings] == ["SH002"]
        assert "i64" in findings[0].message


# ----------------------------------------------------------------------
# Gradient-coverage pass (GC rules)
# ----------------------------------------------------------------------
class TestCoverageMutations:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_dropped_wgrad_task_is_gc001(self, seed):
        program, _schedule = mepipe_program()
        rng = random.Random(seed)
        c = rng.randrange(len(program.chunk_tasks))
        tasks = list(program.chunk_tasks[c])
        victim = tasks.pop(rng.randrange(len(tasks)))
        program.chunk_tasks[c] = tuple(tasks)
        findings = check_coverage(program)
        assert {f.rule_id for f in findings} == {"GC001"}
        assert len(findings) == 1  # deduped across cells
        finding = findings[0]
        assert victim.render() in finding.message
        assert any(
            f"live parameters expect: {victim.render()}" == line
            for line in finding.witness
        )
        assert finding.op is not None and finding.op.kind.name == "B"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_duplicated_wgrad_task_is_gc002(self, seed):
        program, _schedule = mepipe_program()
        rng = random.Random(seed)
        c = rng.randrange(len(program.chunk_tasks))
        tasks = list(program.chunk_tasks[c])
        victim = rng.choice(tasks)
        program.chunk_tasks[c] = tuple(tasks + [victim])
        findings = check_coverage(program)
        assert {f.rule_id for f in findings} == {"GC002"}
        assert victim.render() in findings[0].message

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unscheduled_w_group_is_gc003(self, seed):
        program, _schedule = mepipe_program()
        rng = random.Random(seed)
        cell = rng.choice(sorted(program.w_of))
        g = rng.choice(sorted(program.w_of[cell]))
        del program.w_of[cell][g]
        findings = check_coverage(program)
        assert {f.rule_id for f in findings} == {"GC003"}
        finding = findings[0]
        assert f"gemm group {g}" in finding.message
        assert any(f"group {g} holds: " in line for line in finding.witness)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_w_unordered_after_b_is_gc004(self, seed):
        program, _schedule = mepipe_program()
        rng = random.Random(seed)
        cell = rng.choice(sorted(program.w_of))
        w = program.w_of[cell][rng.choice(sorted(program.w_of[cell]))]
        # Orphan the W op: no dependency edge, no program-order edge —
        # the join no longer proves it runs after its backward.
        program.hb_edges = [e for e in program.hb_edges if e[1] != w]
        findings = check_coverage(program)
        assert {f.rule_id for f in findings} == {"GC004"}
        finding = findings[0]
        graph = program.graph
        assert str(graph.ops[w]) in finding.message
        assert any(line.startswith("write: ") for line in finding.witness)
        assert any(line.startswith("read:") for line in finding.witness)


# ----------------------------------------------------------------------
# Hazard pass (HZ rules)
# ----------------------------------------------------------------------
class TestHazardMutations:
    def test_lost_program_order_is_hz001(self):
        # Without same-stage program order, gradient accumulations of
        # different micro-batches into one parameter buffer race.
        schedule = built("dapple")
        partition = partition_from_spec(SPEC, schedule.problem.num_chunks)
        program = build_program(partition, compiled_graph(schedule))
        graph = program.graph
        program.hb_edges = [
            (a, b) for a, b in program.hb_edges
            if not (graph.stage[a] == graph.stage[b] and b == a + 1
                    and b > 0 and graph.pos[b] > 0)
        ]
        findings = check_hazards(program)
        assert {f.rule_id for f in findings} == {"HZ001"}
        witness = findings[0].witness
        assert len(witness) == 4  # two ops, the buffer, the explanation
        assert witness[2].startswith("shared buffer: grads[")
        assert "no happens-before path" in witness[3]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_swapped_forward_payload_is_hz002(self, seed):
        schedule = built("terapipe", num_slices=4)
        partition = partition_from_spec(SPEC, schedule.problem.num_chunks)
        program = build_program(partition, compiled_graph(schedule))
        problem = schedule.problem
        s, chunks = problem.num_slices, problem.num_chunks
        rng = random.Random(seed)
        mb, sl = rng.randrange(problem.num_microbatches), rng.randrange(s)
        c = rng.randrange(chunks - 1)
        base = (mb * s + sl) * chunks
        w, r = program.f_of[base + c], program.f_of[base + c + 1]
        program.hb_edges = [e for e in program.hb_edges if e != (w, r)]
        findings = check_hazards(program)
        assert {f.rule_id for f in findings} == {"HZ002"}
        finding = findings[0]
        graph = program.graph
        assert f"({mb}, {sl}, {c}->{c + 1})" in finding.message
        assert str(graph.ops[w]) in finding.witness[0]
        assert str(graph.ops[r]) in finding.witness[1]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_swapped_backward_payload_is_hz002(self, seed):
        schedule = built("terapipe", num_slices=4)
        partition = partition_from_spec(SPEC, schedule.problem.num_chunks)
        program = build_program(partition, compiled_graph(schedule))
        problem = schedule.problem
        s, chunks = problem.num_slices, problem.num_chunks
        rng = random.Random(seed)
        mb, sl = rng.randrange(problem.num_microbatches), rng.randrange(s)
        c = rng.randrange(chunks - 1)
        base = (mb * s + sl) * chunks
        w, r = program.b_of[base + c + 1], program.b_of[base + c]
        program.hb_edges = [e for e in program.hb_edges if e != (w, r)]
        findings = check_hazards(program)
        assert {f.rule_id for f in findings} == {"HZ002"}
        assert f"({mb}, {sl}, {c + 1}->{c})" in findings[0].message

    def test_unordered_cell_w_ops_include_hz003(self):
        program, _schedule = mepipe_program()
        graph = program.graph
        # Strip all program order: each cell's W ops keep only their
        # shared dependency on the backward and become mutually
        # unordered — the pinned-activation release has no maximum.
        program.hb_edges = [
            (a, b) for a, b in program.hb_edges
            if not (b == a + 1 and graph.pos[b] > 0)
        ]
        findings = check_hazards(program)
        ids = {f.rule_id for f in findings}
        assert "HZ003" in ids
        hz3 = next(f for f in findings if f.rule_id == "HZ003")
        assert "pinned activations" in hz3.witness[2]
        assert "no happens-before maximum" in hz3.message


class TestDeterminism:
    def test_mutated_report_is_deterministic(self):
        reports = []
        for _ in range(2):
            program, _schedule = mepipe_program()
            tasks = list(program.chunk_tasks[0])
            tasks.pop(0)
            program.chunk_tasks[0] = tuple(tasks)
            reports.append(
                "\n".join(f.render() for f in check_coverage(program))
            )
        assert reports[0] == reports[1]
