"""Tests for the primitive ops: hand-checked values + finite differences."""

import numpy as np
import pytest

from repro.nn import functional as F

rng = np.random.default_rng(42)


def fd_grad(f, x, eps=1e-6):
    """Central finite differences of a scalar function of an array."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        x[idx] += eps
        up = f()
        x[idx] -= 2 * eps
        down = f()
        x[idx] += eps
        g[idx] = (up - down) / (2 * eps)
        it.iternext()
    return g


class TestLinear:
    def test_shapes(self):
        x = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(4, 5))
        assert F.linear(x, w).shape == (2, 3, 5)

    def test_dgrad_wgrad_consistency(self):
        x = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(4, 5))
        dy = rng.normal(size=(2, 3, 5))
        loss = lambda: float(np.sum(F.linear(x, w) * dy))
        assert np.allclose(F.linear_dgrad(dy, w), fd_grad(loss, x), atol=1e-6)
        assert np.allclose(F.linear_wgrad(x, dy), fd_grad(loss, w), atol=1e-6)


class TestRMSNorm:
    def test_unit_scale_preserves_rms(self):
        x = rng.normal(size=(2, 8))
        y, _unused = F.rmsnorm(x, np.ones(8))
        assert np.allclose(np.sqrt(np.mean(y * y, axis=-1)), 1.0, atol=1e-3)

    def test_gradients(self):
        x = rng.normal(size=(2, 6))
        g = rng.normal(size=6)
        dy = rng.normal(size=(2, 6))
        loss = lambda: float(np.sum(F.rmsnorm(x, g)[0] * dy))
        out, inv = F.rmsnorm(x, g)
        assert np.allclose(F.rmsnorm_dgrad(dy, x, g, inv), fd_grad(loss, x),
                           atol=1e-6)
        assert np.allclose(F.rmsnorm_wgrad(dy, x, inv), fd_grad(loss, g),
                           atol=1e-6)


class TestSiLU:
    def test_values(self):
        assert F.silu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert F.silu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)

    def test_gradient(self):
        x = rng.normal(size=7)
        dy = rng.normal(size=7)
        loss = lambda: float(np.sum(F.silu(x) * dy))
        assert np.allclose(F.silu_dgrad(dy, x), fd_grad(loss, x), atol=1e-6)


class TestRoPE:
    def test_rotation_preserves_norm(self):
        x = rng.normal(size=(1, 2, 5, 8))
        cos, sin = F.rope_angles(8, np.arange(5))
        y = F.rope_apply(x, cos, sin)
        assert np.allclose(np.linalg.norm(y, axis=-1), np.linalg.norm(x, axis=-1))

    def test_unapply_inverts(self):
        x = rng.normal(size=(1, 2, 5, 8))
        cos, sin = F.rope_angles(8, np.arange(3, 8))
        y = F.rope_unapply(F.rope_apply(x, cos, sin), cos, sin)
        assert np.allclose(y, x)

    def test_position_zero_is_identity(self):
        x = rng.normal(size=(1, 1, 1, 4))
        cos, sin = F.rope_angles(4, np.array([0]))
        assert np.allclose(F.rope_apply(x, cos, sin), x)


class TestAttention:
    def test_causality(self):
        """Changing a future token cannot affect earlier outputs."""
        q = rng.normal(size=(1, 2, 4, 8))
        k = rng.normal(size=(1, 2, 4, 8))
        v = rng.normal(size=(1, 2, 4, 8))
        out1, _unused = F.attention_slice(q, k, v, offset=0)
        k2, v2 = k.copy(), v.copy()
        k2[:, :, 3] += 1.0
        v2[:, :, 3] -= 2.0
        out2, _unused = F.attention_slice(q, k2, v2, offset=0)
        assert np.allclose(out1[:, :, :3], out2[:, :, :3])
        assert not np.allclose(out1[:, :, 3], out2[:, :, 3])

    def test_slice_equals_full(self):
        """Sliced attention with a KV prefix equals full attention."""
        t, half = 6, 3
        q = rng.normal(size=(1, 2, t, 8))
        k = rng.normal(size=(1, 2, t, 8))
        v = rng.normal(size=(1, 2, t, 8))
        full, _unused = F.attention_slice(q, k, v, offset=0)
        first, _unused = F.attention_slice(q[:, :, :half], k[:, :, :half],
                                           v[:, :, :half], offset=0)
        second, _unused = F.attention_slice(q[:, :, half:], k, v, offset=half)
        assert np.allclose(np.concatenate([first, second], axis=2), full)

    def test_dgrad_finite_differences(self):
        q = rng.normal(size=(1, 1, 2, 4))
        k = rng.normal(size=(1, 1, 3, 4))
        v = rng.normal(size=(1, 1, 3, 4))
        dout = rng.normal(size=(1, 1, 2, 4))

        def loss():
            out, _unused = F.attention_slice(q, k, v, offset=1)
            return float(np.sum(out * dout))

        out, probs = F.attention_slice(q, k, v, offset=1)
        dq, dk, dv = F.attention_slice_dgrad(dout, q, k, v, probs)
        assert np.allclose(dq, fd_grad(loss, q), atol=1e-6)
        assert np.allclose(dk, fd_grad(loss, k), atol=1e-6)
        assert np.allclose(dv, fd_grad(loss, v), atol=1e-6)


class TestCrossEntropy:
    def test_uniform_logits_loss(self):
        v = 8
        logits = np.zeros((1, 3, v))
        targets = np.array([[1, 2, 3]])
        loss, _unused = F.cross_entropy(logits, targets, loss_scale=1 / 3)
        assert loss == pytest.approx(np.log(v))

    def test_gradient_sums_to_zero_rows(self):
        logits = rng.normal(size=(2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        _unused, dlogits = F.cross_entropy(logits, targets, loss_scale=0.5)
        assert np.allclose(dlogits.sum(axis=-1), 0.0, atol=1e-12)

    def test_gradient_finite_differences(self):
        logits = rng.normal(size=(1, 2, 4))
        targets = np.array([[0, 3]])
        scale = 1 / 2
        loss = lambda: F.cross_entropy(logits, targets, scale)[0]
        _unused, dlogits = F.cross_entropy(logits, targets, scale)
        assert np.allclose(dlogits, fd_grad(loss, logits), atol=1e-6)
