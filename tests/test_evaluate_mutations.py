"""Seeded mutation tests for the EV rule family.

Each test corrupts one field of a known-good analytic evaluation (or
its bounds certificate) with :func:`dataclasses.replace` and asserts
that :func:`repro.sim.crossval.cross_validate` files *exactly* the
expected ``EV00x`` rule ids, with the corrupted value visible in the
finding's witness.  Mutation sites are chosen with a seeded RNG so the
suite covers different stages/ops across runs while staying
reproducible — the same idiom as ``tests/test_analysis_mutations.py``.
"""

import dataclasses
import random

import pytest

from repro.analysis.evaluate import (
    EVALUATE_RULES,
    evaluate_schedule,
    iteration_time_bounds,
)
from repro.schedules.methods import build_problem, build_schedule
from repro.sim.cost import UniformCost
from repro.sim.crossval import cross_validate

SEEDS = [0, 1, 2]


@pytest.fixture(scope="module")
def subject():
    """One schedule, cost, clean evaluation, and clean bounds."""
    problem = build_problem("mepipe", 4, 8, num_slices=4, wgrad_gemms=3)
    schedule = build_schedule("mepipe", problem)
    cost = UniformCost(problem, tw=0.5)
    evaluation = evaluate_schedule(schedule, cost)
    bounds = iteration_time_bounds(problem, cost)
    assert bounds is not None
    return schedule, cost, evaluation, bounds


def validate(subject, evaluation=None, bounds=None):
    schedule, cost, base_eval, base_bounds = subject
    return cross_validate(
        schedule,
        cost,
        evaluation=base_eval if evaluation is None else evaluation,
        bounds=base_bounds if bounds is None else bounds,
    )


def findings_for(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


def test_unmutated_subject_is_clean(subject):
    report = validate(subject)
    assert report.ok
    assert report.rule_ids() == set()
    assert report.checked_rules == EVALUATE_RULES


# ----------------------------------------------------------------------
# EV001 — exactness certificates must be bit-for-bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_corrupt_stage_busy_fires_ev001(subject, seed):
    _, _, evaluation, _ = subject
    stage = random.Random(seed).randrange(evaluation.num_stages)
    busy = list(evaluation.stage_busy)
    busy[stage] += 0.125
    mutant = dataclasses.replace(evaluation, stage_busy=tuple(busy))
    report = validate(subject, evaluation=mutant)
    assert not report.ok
    assert report.rule_ids() == {"EV001"}
    (finding,) = [
        f for f in findings_for(report, "EV001") if "stage busy" in f.message
    ]
    assert finding.stage == stage
    assert f"analytic:  {busy[stage]!r}" in finding.witness
    assert any(w.startswith("delta:") for w in finding.witness)


@pytest.mark.parametrize("seed", SEEDS)
def test_corrupt_stage_peak_fires_ev001(subject, seed):
    _, _, evaluation, _ = subject
    stage = random.Random(seed).randrange(evaluation.num_stages)
    peaks = list(evaluation.stage_peak_units)
    peaks[stage] += 1.0
    mutant = dataclasses.replace(evaluation, stage_peak_units=tuple(peaks))
    report = validate(subject, evaluation=mutant)
    assert report.rule_ids() == {"EV001"}
    (finding,) = findings_for(report, "EV001")
    assert "peak ledger units" in finding.message
    assert finding.stage == stage


@pytest.mark.parametrize("seed", SEEDS)
def test_corrupt_op_time_fires_ev001(subject, seed):
    _, _, evaluation, _ = subject
    times = evaluation.times
    assert times is not None
    index = random.Random(seed).randrange(len(times.start))
    start = times.start.copy()
    start[index] += 0.125
    mutant = dataclasses.replace(
        evaluation, times=dataclasses.replace(times, start=start)
    )
    report = validate(subject, evaluation=mutant)
    assert report.rule_ids() == {"EV001"}
    op_findings = [
        f for f in findings_for(report, "EV001") if "op timing" in f.message
    ]
    assert len(op_findings) == 1  # one witness op is enough
    assert op_findings[0].op is not None
    assert any(w.startswith("analytic:") for w in op_findings[0].witness)


# ----------------------------------------------------------------------
# EV002 — bound certificates must contain the simulated time
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_excluding_bounds_fire_ev002(subject, seed):
    _, _, _, bounds = subject
    shift = random.Random(seed).choice([1.0, 2.5, -100.0])
    if shift > 0:  # interval entirely above the simulated time
        mutant = dataclasses.replace(
            bounds, lower=bounds.upper + shift, upper=bounds.upper + shift + 1
        )
    else:  # entirely below
        mutant = dataclasses.replace(
            bounds, lower=bounds.lower + shift, upper=bounds.lower + shift + 1
        )
    report = validate(subject, bounds=mutant)
    assert report.rule_ids() == {"EV002"}
    (finding,) = findings_for(report, "EV002")
    assert "time bounds" in finding.message
    assert f"certified: [{mutant.lower!r}, {mutant.upper!r}]" in finding.witness


def test_excluding_certificate_fires_ev002(subject):
    _, _, evaluation, _ = subject
    # Double the makespan and issue a bounded certificate around the
    # *wrong* value: internally consistent (EV003 quiet), exempt from
    # the exactness obligations (kind != "exact", EV001 quiet) — but the
    # interval no longer contains the simulated time.
    wrong = evaluation.makespan * 2.0
    cert = dataclasses.replace(
        evaluation.certificate,
        kind="bounded",
        lower=wrong - 0.5,
        upper=wrong + evaluation.overhead_time + 0.5,
    )
    mutant = dataclasses.replace(evaluation, makespan=wrong, certificate=cert)
    report = validate(subject, evaluation=mutant)
    assert report.rule_ids() == {"EV002"}
    (finding,) = findings_for(report, "EV002")
    assert "evaluation certificate" in finding.message


# ----------------------------------------------------------------------
# EV003 — certificates must be internally consistent
# ----------------------------------------------------------------------
def test_unknown_certificate_kind_fires_ev003(subject):
    _, _, evaluation, _ = subject
    cert = dataclasses.replace(evaluation.certificate, kind="vibes")
    mutant = dataclasses.replace(evaluation, certificate=cert)
    report = validate(subject, evaluation=mutant)
    assert report.rule_ids() == {"EV003"}
    (finding,) = findings_for(report, "EV003")
    assert "not internally consistent" in finding.message
    assert f"interval: [{cert.lower!r}, {cert.upper!r}]" in finding.witness


def test_non_degenerate_exact_certificate_fires_ev003(subject):
    _, _, evaluation, _ = subject
    cert = dataclasses.replace(
        evaluation.certificate, upper=evaluation.certificate.upper + 1.0
    )
    assert cert.kind == "exact"  # exact => degenerate is now violated
    mutant = dataclasses.replace(evaluation, certificate=cert)
    report = validate(subject, evaluation=mutant)
    assert report.rule_ids() == {"EV003"}


def test_inverted_bounds_fire_ev003_and_ev002(subject):
    _, _, _, bounds = subject
    mutant = dataclasses.replace(bounds, lower=bounds.upper + 1.0)
    report = validate(subject, bounds=mutant)
    # An empty interval is inconsistent (EV003) and cannot contain the
    # simulated time (EV002) — both obligations fail, exactly.
    assert report.rule_ids() == {"EV002", "EV003"}
    (finding,) = findings_for(report, "EV003")
    assert "lower > upper" in finding.message


# ----------------------------------------------------------------------
# EV004 — phase boundaries must tile each stage window
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_disordered_phases_fire_ev004(subject, seed):
    _, _, evaluation, _ = subject
    stage = random.Random(seed).randrange(evaluation.num_stages)
    phases = list(evaluation.phases)
    broken = dataclasses.replace(
        phases[stage], warmup_end=phases[stage].steady_end + 1.0
    )
    assert not broken.ordered()
    phases[stage] = broken
    mutant = dataclasses.replace(evaluation, phases=tuple(phases))
    report = validate(subject, evaluation=mutant)
    assert report.rule_ids() == {"EV004"}
    (finding,) = findings_for(report, "EV004")
    assert finding.stage == stage
    assert f"warmup_end: {broken.warmup_end!r}" in finding.witness


@pytest.mark.parametrize("seed", SEEDS)
def test_phase_end_off_stage_end_fires_ev004(subject, seed):
    _, _, evaluation, _ = subject
    stage = random.Random(seed).randrange(evaluation.num_stages)
    phases = list(evaluation.phases)
    broken = dataclasses.replace(phases[stage], end=phases[stage].end + 1.0)
    assert broken.ordered()  # still ordered — the tiling is what breaks
    phases[stage] = broken
    mutant = dataclasses.replace(evaluation, phases=tuple(phases))
    report = validate(subject, evaluation=mutant)
    assert report.rule_ids() == {"EV004"}
    (finding,) = findings_for(report, "EV004")
    assert finding.stage == stage
