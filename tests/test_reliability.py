"""Tests for checkpointing, fault injection, MTBF model, and TCO."""

import numpy as np
import pytest

from repro.data import token_batches
from repro.hardware.tco import compare_equal_compute
from repro.model import tiny_spec
from repro.nn import Adam, build_model, sequential_step
from repro.reliability import (
    FaultInjector,
    InjectedFault,
    ReliabilityModel,
    TrainingDriver,
    load_checkpoint,
    restore_checkpoint,
    rtx4090_thousand_gpu_model,
    save_checkpoint,
    scaled_mtbf,
    take_checkpoint,
)

SPEC = tiny_spec(hidden_size=32, num_layers=2, num_heads=4,
                 ffn_hidden_size=64, vocab_size=19, seq_length=8)


def make_training():
    tokens, targets = token_batches(SPEC.vocab_size, 2, 2, SPEC.seq_length, seed=2)
    model = build_model(SPEC, seed=5)
    optimizer = Adam(model, lr=1e-3)

    def step_fn(m):
        return sequential_step(m, tokens, targets)

    return model, optimizer, step_fn


class TestCheckpointRoundtrip:
    def test_restore_recovers_exact_state(self):
        model, optimizer, step_fn = make_training()
        step_fn(model)
        optimizer.step()
        snapshot = take_checkpoint(model, optimizer, step=1)
        before = {k: v.copy() for k, v in model.named_params().items()}
        # Diverge...
        step_fn(model)
        optimizer.step()
        # ...and restore.
        step = restore_checkpoint(model, optimizer, snapshot)
        assert step == 1
        for key, value in model.named_params().items():
            assert np.array_equal(value, before[key])
        assert optimizer.step_count == 1

    def test_disk_roundtrip(self, tmp_path):
        model, optimizer, step_fn = make_training()
        step_fn(model)
        optimizer.step()
        snapshot = take_checkpoint(model, optimizer, step=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(snapshot, path)
        loaded = load_checkpoint(path)
        assert loaded.step == 1 and loaded.adam_step == 1
        for key, value in snapshot.params.items():
            assert np.array_equal(loaded.params[key], value)
        for key, value in snapshot.adam_v.items():
            assert np.array_equal(loaded.adam_v[key], value)


class TestFaultInjection:
    def test_injector_fires_once(self):
        injector = FaultInjector(fail_at_steps={3})
        injector.check(2)
        with pytest.raises(InjectedFault):
            injector.check(3)
        injector.check(3)  # does not fire twice

    def test_training_recovers_to_exact_trajectory(self):
        """Failure injection: a crash mid-run must not change the
        final model relative to an uninterrupted run."""
        model_a, opt_a, step_a = make_training()
        clean = TrainingDriver(model_a, opt_a, checkpoint_interval=2)
        losses_clean = clean.run(step_a, steps=8)

        model_b, opt_b, step_b = make_training()
        faulty = TrainingDriver(
            model_b, opt_b, checkpoint_interval=2,
            injector=FaultInjector(fail_at_steps={3, 7}))
        losses_faulty = faulty.run(step_b, steps=8)

        assert faulty.recoveries == 2
        assert losses_faulty == pytest.approx(losses_clean, abs=1e-12)
        for key, value in model_a.named_params().items():
            assert np.allclose(value, model_b.named_params()[key], atol=1e-12)

    def test_recovery_replays_lost_steps(self):
        model, optimizer, step_fn = make_training()
        driver = TrainingDriver(model, optimizer, checkpoint_interval=4,
                                injector=FaultInjector(fail_at_steps={5}))
        losses = driver.run(step_fn, steps=6)
        assert len(losses) == 6
        assert driver.recoveries == 1


class TestMTBFModel:
    def test_scaled_mtbf_inverse_in_gpus(self):
        assert scaled_mtbf(12.0, 1000, 2000) == pytest.approx(6.0)
        assert scaled_mtbf(12.0, 1000, 500) == pytest.approx(24.0)

    def test_youngs_interval(self):
        model = ReliabilityModel(cluster_mtbf_hours=1.0,
                                 checkpoint_seconds=18.0,
                                 recovery_seconds=60.0)
        assert model.optimal_checkpoint_interval() == pytest.approx(360.0)

    def test_paper_estimate_under_5pct(self):
        """Section 9: failure cost < 5% for a thousand RTX 4090s."""
        assert rtx4090_thousand_gpu_model().overhead_fraction() < 0.05

    def test_slow_recovery_blows_the_budget(self):
        slow = rtx4090_thousand_gpu_model(checkpoint_seconds=300,
                                          recovery_seconds=1800)
        assert slow.overhead_fraction() > 0.10

    def test_optimal_interval_minimizes_overhead(self):
        model = rtx4090_thousand_gpu_model()
        opt = model.overhead_fraction()
        assert opt <= model.overhead_fraction(model.optimal_checkpoint_interval() * 3)
        assert opt <= model.overhead_fraction(model.optimal_checkpoint_interval() / 3)


class TestTCO:
    def test_paper_parity_about_24_years(self):
        tco = compare_equal_compute(electricity_usd_per_kwh=0.1)
        assert 20 < tco.parity_years < 30

    def test_pricier_power_shortens_parity(self):
        cheap_power = compare_equal_compute(electricity_usd_per_kwh=0.05)
        pricey_power = compare_equal_compute(electricity_usd_per_kwh=0.3)
        assert pricey_power.parity_years < cheap_power.parity_years

    def test_two_4090s_per_a100(self):
        tco = compare_equal_compute()
        assert tco.cheap_gpus_per_expensive == pytest.approx(2.0)
        assert tco.extra_power_watts == pytest.approx(500.0)
