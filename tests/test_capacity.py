"""Soundness of the capacity analyzer over the E0 acceptance grid.

For every grid config the inferred deadlock-free capacity vector must
let the bounded-channel simulator complete (or the verifier must emit a
CP witness), the inferred backpressure-free vector must reproduce the
unbounded run bit for bit, and the analytic ``bounded_dense_times``
replay must agree with the bounded event simulator exactly — the
max-plus exactness argument that backs every CP certificate.  The
parallel-runtime half asserts the end-to-end claim: rings sized at the
inferred capacities keep gradients bit-identical to the serial golden
runtime while shrinking the shared-memory footprint.
"""

import numpy as np
import pytest

from repro.analysis.capacity import (
    bounded_dense_times,
    certify_capacities,
    check_capacities,
    cross_validate_capacities,
    infer_capacities,
)
from repro.analysis.evaluate.dense import dense_schedule_times
from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import build_model
from repro.pipeline import ParallelPipelineRuntime, PipelineRuntime
from repro.schedules import ScheduleError, build_problem, build_schedule
from repro.schedules.graph import compiled_graph
from repro.sim import UniformCost, simulate

#: The E0 acceptance grid: every method at its native shape.
GRID = [
    ("dapple", {}),
    ("terapipe", {"num_slices": 4}),
    ("vpp", {"virtual_size": 2}),
    ("zb", {}),
    ("zbv", {"virtual_size": 2}),
    ("svpp", {"num_slices": 4, "virtual_size": 2}),
    ("mepipe", {"num_slices": 4, "wgrad_gemms": 3}),
]

IDS = [m for m, _ in GRID]


def build(method, p=4, n=8, **kwargs):
    problem = build_problem(method, p, n, **kwargs)
    return build_schedule(method, problem)


@pytest.fixture(scope="module", params=GRID, ids=IDS)
def subject(request):
    method, kwargs = request.param
    schedule = build(method, **kwargs)
    cost = UniformCost(schedule.problem, tw=0.5)
    plan = infer_capacities(schedule, cost)
    return schedule, cost, plan


class TestGridSoundness:
    def test_deadlock_free_caps_certify_clean(self, subject):
        schedule, cost, plan = subject
        report = check_capacities(
            schedule, capacities=plan.capacities("deadlock-free")
        )
        assert report.ok, report.render_text()
        assert report.checked_rules == ("CP001", "CP002")

    def test_deadlock_free_caps_complete_or_witness(self, subject):
        """Acceptance criterion: the bounded sim at the inferred
        deadlock-free capacities completes bit-for-bit with the
        unbounded run, or the verifier names the backpressure."""
        schedule, cost, plan = subject
        caps = plan.capacities("deadlock-free")
        unbounded = simulate(schedule, cost)
        bounded = simulate(schedule, cost, channel_capacities=caps)
        assert set(bounded.records) == set(unbounded.records)
        assert bounded.makespan >= unbounded.makespan
        report = check_capacities(schedule, capacities=caps, cost=cost)
        if bounded.makespan == unbounded.makespan:
            for op, rec in unbounded.records.items():
                brec = bounded.records[op]
                assert (brec.start, brec.end) == (rec.start, rec.end)
            assert report.ok, report.render_text()
        else:
            (finding,) = report.findings
            assert finding.rule_id == "CP003"
            assert any(
                "unbounded makespan" in line for line in finding.witness
            )

    def test_backpressure_free_caps_are_bit_exact(self, subject):
        schedule, cost, plan = subject
        caps = plan.capacities("backpressure-free")
        unbounded = simulate(schedule, cost)
        bounded = simulate(schedule, cost, channel_capacities=caps)
        assert bounded.makespan == unbounded.makespan
        for op, rec in unbounded.records.items():
            brec = bounded.records[op]
            assert (brec.start, brec.end) == (rec.start, rec.end)

    def test_analytic_replay_matches_bounded_sim_exactly(self, subject):
        """``bounded_dense_times`` and the bounded event simulator are
        two evaluation orders of the same max-plus recurrence; IEEE max
        is exact, so they agree bit for bit — at the backpressure-free
        caps AND at the tighter deadlock-free caps."""
        schedule, cost, plan = subject
        graph = compiled_graph(schedule)
        times = dense_schedule_times(graph, cost)
        for mode in ("deadlock-free", "backpressure-free"):
            caps = plan.capacities(mode)
            analytic = bounded_dense_times(graph, caps, times=times)
            sim = simulate(schedule, cost, channel_capacities=caps)
            by_index = {
                (graph.ops[i]): (float(analytic.start[i]), float(analytic.end[i]))
                for i in range(graph.num_ops)
            }
            for op, rec in sim.records.items():
                assert by_index[op] == (rec.start, rec.end), (mode, op)

    def test_certificate_cross_validates(self, subject):
        schedule, cost, plan = subject
        for mode in ("deadlock-free", "backpressure-free"):
            certificate = certify_capacities(schedule, cost, mode=mode)
            report = cross_validate_capacities(schedule, cost, certificate)
            assert report.ok, report.render_text()
            assert report.checked_rules == (
                "CP001", "CP002", "CP003", "CP004",
            )
            if mode == "backpressure-free":
                assert certificate.backpressure_free
                assert certificate.makespan == plan.unbounded_makespan

    def test_deadlock_free_caps_are_componentwise_minimal(self, subject):
        """Lowering any single channel below its inferred capacity must
        deadlock (CP001) or become invalid (CP002) — the documented
        componentwise-local minimality guarantee."""
        schedule, cost, plan = subject
        caps = plan.capacities("deadlock-free")
        for key in caps:
            starved = dict(caps)
            starved[key] -= 1
            report = check_capacities(schedule, capacities=starved)
            assert not report.ok, (key, report.render_text())
            rule = "CP002" if starved[key] < 1 else "CP001"
            assert rule in report.rule_ids(), (key, report.render_text())

    def test_full_caps_carry_every_message(self, subject):
        schedule, cost, plan = subject
        full = plan.capacities("full")
        dl = plan.capacities("deadlock-free")
        bp = plan.capacities("backpressure-free")
        assert set(full) == set(dl) == set(bp)
        for channel in plan.channels:
            assert full[channel.key] == channel.messages
            assert 1 <= dl[channel.key] <= channel.messages
            assert 1 <= bp[channel.key] <= channel.messages

    def test_starved_sim_raises_schedule_error(self, subject):
        schedule, cost, plan = subject
        caps = plan.capacities("deadlock-free")
        key = min(k for k, v in caps.items() if v >= 1)
        starved = dict(caps)
        starved[key] = 0
        with pytest.raises(ScheduleError, match="capacity"):
            simulate(schedule, cost, channel_capacities=starved)


# ----------------------------------------------------------------------
# End-to-end: the parallel runtime at inferred capacities
# ----------------------------------------------------------------------
SPEC = tiny_spec(
    hidden_size=32,
    num_layers=6,
    num_heads=4,
    ffn_hidden_size=64,
    vocab_size=31,
    seq_length=16,
)
N, B = 4, 2


@pytest.fixture(scope="module")
def data():
    return token_batches(SPEC.vocab_size, N, B, SPEC.seq_length, seed=5)


def run_serial(schedule, data):
    tokens, targets = data
    model = build_model(SPEC, seed=11)
    result = PipelineRuntime(model, tokens, targets).run(schedule)
    return model, result


def parallel_runtime(data, timeout=60.0):
    tokens, targets = data
    model = build_model(SPEC, seed=11)
    return model, ParallelPipelineRuntime(model, tokens, targets,
                                          timeout=timeout)


class TestParallelRuntimeAtInferredCaps:
    def test_explicit_inferred_caps_match_serial_golden(self, data):
        schedule = build("mepipe", n=N, num_slices=4, wgrad_gemms=3)
        serial_model, golden = run_serial(schedule, data)
        parallel_model, runtime = parallel_runtime(data)
        plan = infer_capacities(schedule)
        result = runtime.run(
            schedule, capacity_mode=plan.capacities("deadlock-free")
        )
        assert result.loss == golden.loss
        serial_grads = serial_model.named_grads()
        grads = parallel_model.named_grads()
        assert set(grads) == set(serial_grads)
        for key, grad in grads.items():
            assert np.array_equal(grad, serial_grads[key]), key

    def test_stats_carry_ring_ledger(self, data):
        from repro.analysis.capacity import ring_bytes_per_stage
        from repro.pipeline.channels import _HEADER_BYTES

        schedule = build("mepipe", n=N, num_slices=4, wgrad_gemms=3)
        _, runtime = parallel_runtime(data)
        slots, total = runtime.plan_channels(schedule, capacity_mode="auto")
        result = runtime.run(schedule, capacity_mode="auto")
        slot_bytes = _HEADER_BYTES + runtime._payload_bytes(schedule.problem)
        expected = ring_bytes_per_stage(
            {(k.src_stage, k.dst_stage, k.kind): n for k, n in slots.items()},
            schedule.problem.num_stages,
            slot_bytes,
        )
        stamped = [s.channel_buffer_bytes for s in result.stage_stats]
        assert stamped == list(expected)
        assert sum(stamped) == total
        assert total > 0

    def test_serial_runtime_ledger_stays_zero(self, data):
        schedule = build("dapple", n=N)
        _, result = run_serial(schedule, data)
        assert all(s.channel_buffer_bytes == 0 for s in result.stage_stats)

    def test_auto_footprint_beats_full(self, data):
        _, runtime = parallel_runtime(data)
        for method, kwargs in GRID:
            schedule = build(method, n=N, **kwargs)
            _, auto_bytes = runtime.plan_channels(
                schedule, capacity_mode="auto"
            )
            _, full_bytes = runtime.plan_channels(
                schedule, capacity_mode="full"
            )
            assert auto_bytes < full_bytes, schedule.name

    def test_ledger_matches_memory_analyzer(self, data):
        from repro.analysis import infer_channel_buffers

        schedule = build("mepipe", n=N, num_slices=4, wgrad_gemms=3)
        _, runtime = parallel_runtime(data)
        slots, total = runtime.plan_channels(schedule, capacity_mode="auto")
        per_stage = infer_channel_buffers(
            compiled_graph(schedule), slots,
            runtime._payload_bytes(schedule.problem),
        )
        assert sum(per_stage) == total

    def test_refuses_to_spawn_on_starved_caps(self, data):
        schedule = build("mepipe", n=N, num_slices=4, wgrad_gemms=3)
        _, runtime = parallel_runtime(data)
        plan = infer_capacities(schedule)
        starved = plan.capacities("deadlock-free")
        key = min(starved)
        starved[key] = 0
        with pytest.raises(ScheduleError, match="refused to spawn"):
            runtime.run(schedule, capacity_mode=starved)

    def test_unknown_mode_is_rejected(self, data):
        schedule = build("dapple", n=N)
        _, runtime = parallel_runtime(data)
        with pytest.raises(ScheduleError, match="capacity_mode"):
            runtime.resolve_capacities(schedule, "bogus")


class TestTimeoutKnob:
    def test_default_without_env(self, monkeypatch):
        from repro.pipeline.channels import (
            DEFAULT_CHANNEL_TIMEOUT,
            default_channel_timeout,
        )

        monkeypatch.delenv("REPRO_CHANNEL_TIMEOUT", raising=False)
        assert default_channel_timeout() == DEFAULT_CHANNEL_TIMEOUT

    def test_env_override_reaches_runtime(self, monkeypatch, data):
        from repro.pipeline.channels import default_channel_timeout

        monkeypatch.setenv("REPRO_CHANNEL_TIMEOUT", "12.5")
        assert default_channel_timeout() == 12.5
        tokens, targets = data
        runtime = ParallelPipelineRuntime(
            build_model(SPEC, seed=11), tokens, targets
        )
        assert runtime.timeout == 12.5

    def test_explicit_timeout_wins(self, monkeypatch, data):
        monkeypatch.setenv("REPRO_CHANNEL_TIMEOUT", "12.5")
        tokens, targets = data
        runtime = ParallelPipelineRuntime(
            build_model(SPEC, seed=11), tokens, targets, timeout=3.0
        )
        assert runtime.timeout == 3.0

    @pytest.mark.parametrize("raw", ["nope", "0", "-1"])
    def test_bad_values_are_rejected(self, monkeypatch, raw):
        from repro.pipeline.channels import default_channel_timeout

        monkeypatch.setenv("REPRO_CHANNEL_TIMEOUT", raw)
        with pytest.raises(ScheduleError, match="REPRO_CHANNEL_TIMEOUT"):
            default_channel_timeout()
