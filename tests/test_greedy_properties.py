"""Property-based tests of the greedy schedule generator.

Whatever the shape and policy, a generated schedule must be complete,
dependency-consistent (deadlock-free), and respect the first-stage
activation cap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedules import (
    GreedyPolicy,
    OpKind,
    PipelineProblem,
    default_first_stage_cap,
    greedy_schedule,
    min_first_stage_cap,
    validate_schedule,
)
from repro.sim import UniformCost, simulate

shapes = st.tuples(
    st.integers(min_value=1, max_value=5),  # p
    st.integers(min_value=1, max_value=6),  # n
    st.integers(min_value=1, max_value=4),  # s
    st.integers(min_value=1, max_value=3),  # v
)


@settings(max_examples=60, deadline=None)
@given(shapes)
def test_any_shape_generates_valid_schedule(shape):
    p, n, s, v = shape
    problem = PipelineProblem(
        num_stages=p, num_microbatches=n, num_slices=s, virtual_size=v
    )
    schedule = greedy_schedule(problem)
    validate_schedule(schedule)


@settings(max_examples=40, deadline=None)
@given(shapes, st.booleans(), st.sampled_from(["children", "fifo"]))
def test_split_backward_any_policy_valid(shape, fill, priority):
    p, n, s, v = shape
    problem = PipelineProblem(
        num_stages=p,
        num_microbatches=n,
        num_slices=s,
        virtual_size=v,
        split_backward=True,
        wgrad_gemms=2,
    )
    policy = GreedyPolicy(fill_with_wgrad=fill, backward_priority=priority)
    schedule = greedy_schedule(problem, policy)
    validate_schedule(schedule)


@settings(max_examples=40, deadline=None)
@given(shapes, st.data())
def test_every_f_variant_respects_its_cap(shape, data):
    """Peak live F ops on stage 0 never exceeds f (Section 4.2)."""
    p, n, s, v = shape
    problem = PipelineProblem(
        num_stages=p, num_microbatches=n, num_slices=s, virtual_size=v
    )
    lo, hi = min_first_stage_cap(problem), default_first_stage_cap(problem)
    f = data.draw(st.integers(min_value=lo, max_value=hi))
    schedule = greedy_schedule(problem, GreedyPolicy(first_stage_cap=f))
    validate_schedule(schedule)
    result = simulate(schedule, UniformCost(problem))
    cap_units = f * problem.activation_units_per_op
    assert result.stages[0].peak_activation_units <= cap_units + 1e-9


@settings(max_examples=30, deadline=None)
@given(shapes)
def test_makespan_at_least_critical_path(shape):
    """The makespan can never beat the single-sample dependency chain."""
    p, n, s, v = shape
    problem = PipelineProblem(
        num_stages=p, num_microbatches=n, num_slices=s, virtual_size=v
    )
    schedule = greedy_schedule(problem)
    cost = UniformCost(problem, tf=1.0, tb=2.0)
    result = simulate(schedule, cost)
    # Critical path of one sample: all chunks forward then backward for
    # one slice, plus per-stage work for the remaining load.
    chain = (cost.tf + cost.tb) * problem.num_chunks / (s * v)
    per_stage = n * (cost.tf + cost.tb)
    assert result.makespan >= max(chain, per_stage) - 1e-9


@settings(max_examples=30, deadline=None)
@given(shapes)
def test_total_busy_time_is_conserved(shape):
    """Scheduling reorders work; it cannot create or destroy it."""
    p, n, s, v = shape
    problem = PipelineProblem(
        num_stages=p, num_microbatches=n, num_slices=s, virtual_size=v
    )
    schedule = greedy_schedule(problem)
    cost = UniformCost(problem)
    result = simulate(schedule, cost)
    expected = sum(cost.duration(op) for op in problem.all_ops())
    assert sum(m.busy_time for m in result.stages) == \
        __import__("pytest").approx(expected)


@settings(max_examples=30, deadline=None)
@given(shapes)
def test_all_activations_released(shape):
    """Every forward's activations are freed by the end of the iteration."""
    p, n, s, v = shape
    problem = PipelineProblem(
        num_stages=p, num_microbatches=n, num_slices=s, virtual_size=v,
        split_backward=True, wgrad_gemms=3,
    )
    schedule = greedy_schedule(problem)
    from repro.sim.executor import _Ledger

    for stage in range(p):
        ledger = _Ledger(problem=problem)
        for op in schedule.stage_ops(stage):
            ledger.apply(op, problem.activation_units_per_op)
        assert abs(ledger.current) < 1e-9
