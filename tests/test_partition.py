"""Tests for slice partitioning (uniform vs TeraPipe DP, Section 5)."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import LLAMA_7B, tiny_spec
from repro.schedules.partition import (
    SlicePlan,
    balanced_plan,
    compare_plans,
    shape_penalty,
    slice_forward_seconds,
    uniform_plan,
)


class TestSlicePlan:
    def test_uniform_sizes(self):
        plan = uniform_plan(4096, 4)
        assert plan.sizes() == [1024] * 4
        assert plan.num_slices == 4
        assert plan.slice_offset(2) == 2048

    def test_uniform_indivisible_rejected(self):
        with pytest.raises(ValueError):
            uniform_plan(100, 3)

    def test_shape_penalty(self):
        assert shape_penalty(1024) == 1.0
        assert shape_penalty(1000) > 1.0


class TestBalancedPlan:
    def test_covers_whole_sequence(self):
        spec = replace(LLAMA_7B, seq_length=8192)
        plan = balanced_plan(spec, 4, granularity=256)
        assert plan.boundaries[0] == 0
        assert plan.boundaries[-1] == 8192
        assert sum(plan.sizes()) == 8192
        assert all(size > 0 for size in plan.sizes())

    def test_later_slices_not_larger(self):
        """Balancing against causal attention shrinks later slices."""
        spec = replace(LLAMA_7B, seq_length=65536)
        plan = balanced_plan(spec, 8, granularity=1024)
        sizes = plan.sizes()
        assert sizes[0] > sizes[-1]

    def test_dp_never_worse_than_uniform_without_penalty(self):
        spec = replace(LLAMA_7B, seq_length=16384)
        bal = balanced_plan(spec, 4, granularity=512, irregular_penalty=1.0)
        uni = uniform_plan(16384, 4)

        def bottleneck(plan):
            return max(
                slice_forward_seconds(spec, plan.slice_tokens(i),
                                      plan.slice_offset(i))
                for i in range(plan.num_slices))

        assert bottleneck(bal) <= bottleneck(uni) + 1e-12

    def test_too_many_slices_rejected(self):
        spec = replace(LLAMA_7B, seq_length=1024)
        with pytest.raises(ValueError):
            balanced_plan(spec, 16, granularity=128)


class TestSection5Claim:
    def test_short_context_uniform_competitive(self):
        """At 4k the DP finds nothing better than uniform slices."""
        spec = replace(LLAMA_7B, seq_length=4096)
        c = compare_plans(spec, 8, granularity=64, irregular_penalty=1.25)
        assert c.balanced_bottleneck >= 0.99 * c.uniform_bottleneck

    def test_long_context_balanced_wins(self):
        """Beyond ~64k tokens non-uniform partitioning pays (Section 5:
        'training models with a context longer than 128,000 tokens')."""
        spec = replace(LLAMA_7B, seq_length=131072)
        c = compare_plans(spec, 8, granularity=2048, irregular_penalty=1.25)
        assert c.balanced_wins
        assert c.uniform_bottleneck / c.balanced_bottleneck > 1.15

    def test_gain_grows_with_context(self):
        gains = []
        for ctx in (16384, 65536, 131072):
            spec = replace(LLAMA_7B, seq_length=ctx)
            c = compare_plans(spec, 8, granularity=ctx // 64,
                              irregular_penalty=1.25)
            gains.append(c.uniform_bottleneck / c.balanced_bottleneck)
        assert gains == sorted(gains)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=8),
       st.sampled_from([2048, 4096, 8192]))
def test_balanced_plan_is_valid_partition(num_slices, seq):
    spec = tiny_spec(seq_length=seq)
    plan = balanced_plan(spec, num_slices, granularity=seq // 32)
    assert plan.num_slices == num_slices
    assert list(plan.boundaries) == sorted(set(plan.boundaries))
    assert plan.boundaries[0] == 0 and plan.boundaries[-1] == seq
