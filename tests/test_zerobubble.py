"""Tests for ZB-1P, ZBV, and Hanayo schedules."""

import pytest

from repro.schedules import (
    OpKind,
    ScheduleError,
    analyze,
    build_problem,
    build_schedule,
    hanayo_problem,
    hanayo_schedule,
    validate_schedule,
    zb_problem,
    zb_schedule,
    zbv_problem,
    zbv_schedule,
)
from repro.sim import UniformCost, simulate


class TestZB:
    def _run(self, p, n):
        problem = zb_problem(p, n)
        schedule = zb_schedule(problem)
        validate_schedule(schedule)
        # Split backward: B carries the dgrad half, W the wgrad half.
        return simulate(schedule, UniformCost(problem, tf=1, tb=1, tw=1))

    def test_beats_dapple_bubble(self):
        """Deferred W fills the drain bubbles DAPPLE leaves."""
        zb = self._run(4, 8)
        pr = build_problem("dapple", 4, 8)
        dapple = simulate(build_schedule("dapple", pr), UniformCost(pr, tf=1, tb=2))
        assert zb.bubble_ratio < dapple.bubble_ratio

    def test_same_total_compute_as_dapple(self):
        zb = self._run(4, 8)
        pr = build_problem("dapple", 4, 8)
        dapple = simulate(build_schedule("dapple", pr), UniformCost(pr, tf=1, tb=2))
        assert sum(s.busy_time for s in zb.stages) == pytest.approx(
            sum(s.busy_time for s in dapple.stages))

    def test_memory_above_dapple(self):
        """Pinned activation gradients push ZB past DAPPLE's A
        (the Section 7.2 OOM mechanism)."""
        zb = self._run(4, 8)
        assert 1.0 < zb.peak_activation_units <= 1.5

    def test_w_never_precedes_its_b(self):
        problem = zb_problem(4, 4)
        schedule = zb_schedule(problem)
        for stage in range(4):
            seen_b = set()
            for op in schedule.stage_ops(stage):
                if op.kind is OpKind.B:
                    seen_b.add((op.microbatch, op.slice_idx, op.chunk))
                elif op.kind is OpKind.W:
                    assert (op.microbatch, op.slice_idx, op.chunk) in seen_b

    def test_rejects_fused_problem(self):
        with pytest.raises(ScheduleError):
            zb_schedule(build_problem("dapple", 2, 2))


class TestZBV:
    def _run(self, p, n):
        problem = zbv_problem(p, n)
        schedule = zbv_schedule(problem)
        validate_schedule(schedule)
        return simulate(schedule, UniformCost(problem, tf=1, tb=1, tw=1))

    def test_lower_bubble_than_zb(self):
        zbv = self._run(4, 16)
        problem = zb_problem(4, 16)
        zb = simulate(zb_schedule(problem), UniformCost(problem, tf=1, tb=1, tw=1))
        assert zbv.bubble_ratio < zb.bubble_ratio

    def test_vshape_first_backward_on_stage0(self):
        """With V-placement the head chunk lives on stage 0."""
        problem = zbv_problem(4, 4)
        assert problem.stage_of_chunk(problem.num_chunks - 1) == 0

    def test_memory_between_1_and_2(self):
        zbv = self._run(4, 8)
        assert 1.0 <= zbv.peak_activation_units <= 2.0

    def test_requires_vshape(self):
        from repro.schedules import PipelineProblem
        bad = PipelineProblem(num_stages=4, num_microbatches=4, virtual_size=2,
                              split_backward=True)
        with pytest.raises(ScheduleError):
            zbv_schedule(bad)


class TestHanayo:
    def _run(self, p, n, waves=2):
        problem = hanayo_problem(p, n, waves=waves)
        schedule = hanayo_schedule(problem)
        validate_schedule(schedule)
        return simulate(schedule, UniformCost(problem, tb=1))

    def test_bubble_matches_table3(self):
        result = self._run(4, 8)
        expected = analyze("hanayo", 4, 8, v=2)
        assert result.bubble_ratio == pytest.approx(expected.bubble_ratio, abs=1e-9)

    def test_memory_matches_table3(self):
        result = self._run(4, 8)
        expected = analyze("hanayo", 4, 8, v=2)
        assert result.peak_activation_units == pytest.approx(expected.memory_units)

    def test_rejects_interleaved_placement(self):
        from repro.schedules import PipelineProblem
        bad = PipelineProblem(num_stages=4, num_microbatches=4, virtual_size=2)
        with pytest.raises(ScheduleError):
            hanayo_schedule(bad)
