"""The analytic evaluator against the simulator, across the grids.

The evaluator's central claim — "exact" certificates are bit-for-bit,
"bounded" certificates contain the simulated value — is checked here on
the full acceptance grid from ``tests/test_verify.py`` and the E0
method grid, under the uniform, imbalanced, and calibrated cluster cost
models.  The cross-validation harness (:mod:`repro.sim.crossval`) does
the bit-level comparison against the *scalar* engines (heap and
fixed-point), so these tests never compare the wavefront with itself.

Also covered: the planner's tiered first pass returning exactly the
sim-only sweep's optimum and Pareto frontier, and the sweep cache never
aliasing analytic and sim entries (tier + evaluator version are part of
the fingerprint).
"""

import dataclasses
import random

import pytest

from repro.analysis.evaluate import (
    EVALUATE_RULES,
    EVALUATOR_VERSION,
    evaluate_schedule,
    iteration_time_bounds,
    peak_units_floor,
)
from repro.experiments.e0 import METHOD_SETUPS
from repro.hardware.cluster import RTX4090_CLUSTER
from repro.model.spec import LLAMA_13B
from repro.parallel.strategies import ParallelConfig
from repro.planner.parallel import (
    EvalTask,
    SweepCache,
    eval_fingerprint,
    evaluate_tasks,
)
from repro.planner.search import pareto_frontier, search_method
from repro.schedules.methods import build_problem, build_schedule
from repro.sim.cost import ClusterCost, UniformCost
from repro.sim.crossval import cross_validate
from repro.sim.executor import simulate

from tests.test_verify import golden_grid

SEEDS = [0, 1, 2]

GBS = 64


def imbalanced_cost(problem, s):
    return UniformCost(
        problem, tw=0.5, imbalance=tuple(1.0 + 0.1 * i for i in range(s))
    )


# ----------------------------------------------------------------------
# Exactness over the acceptance grids
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "method,p,n,s,v,g", list(golden_grid()), ids=lambda val: str(val)
)
def test_analytic_is_bit_exact_on_golden_grid(method, p, n, s, v, g):
    problem = build_problem(
        method, p, n, num_slices=s, virtual_size=v, wgrad_gemms=g
    )
    schedule = build_schedule(method, problem)
    cost = imbalanced_cost(problem, s)
    bounds = iteration_time_bounds(problem, cost)
    report = cross_validate(schedule, cost, engine="heap", bounds=bounds)
    assert report.ok, report.render_text()
    assert report.checked_rules == EVALUATE_RULES


@pytest.mark.parametrize("method,kwargs", METHOD_SETUPS, ids=lambda v: str(v))
def test_analytic_is_bit_exact_on_e0_grid(method, kwargs):
    if not isinstance(kwargs, dict):
        pytest.skip("parametrize unpacking artifact")
    problem = build_problem(method, 4, 4, **kwargs)
    schedule = build_schedule(method, problem)
    cost = UniformCost(problem, tw=0.5)
    bounds = iteration_time_bounds(problem, cost)
    report = cross_validate(
        schedule, cost, engine="fixed-point", bounds=bounds
    )
    assert report.ok, report.render_text()


def test_analytic_is_bit_exact_under_cluster_cost():
    config = ParallelConfig(dp=8, pp=8, spp=4)
    problem = build_problem("mepipe", 8, 16, num_slices=4, wgrad_gemms=2)
    cost = ClusterCost(
        spec=LLAMA_13B, config=config, cluster=RTX4090_CLUSTER,
        problem=problem,
    )
    schedule = build_schedule("mepipe", problem, cost=cost)
    overhead = cost.dp_sync_seconds() + cost.optimizer_seconds()
    bounds = iteration_time_bounds(problem, cost, overhead_time=overhead)
    report = cross_validate(
        schedule, cost, overhead_time=overhead, engine="heap", bounds=bounds
    )
    assert report.ok, report.render_text()
    # Byte conversions are stamped identically on both result types.
    sim = simulate(schedule, cost, overhead_time=overhead)
    ev = evaluate_schedule(schedule, cost, overhead_time=overhead)
    assert ev.stage_peak_bytes == sim.stage_peak_bytes
    assert ev.comm_bytes_per_message == sim.comm_bytes_per_message


def test_exactness_survives_overhead_and_actgrad():
    problem = build_problem("mepipe", 4, 8, num_slices=2, wgrad_gemms=3)
    schedule = build_schedule("mepipe", problem)
    cost = UniformCost(problem, tw=0.5)
    report = cross_validate(
        schedule, cost, overhead_time=0.25, actgrad_factor=0.5,
        engine="fixed-point",
    )
    assert report.ok, report.render_text()


# ----------------------------------------------------------------------
# Certificates, bounds, phases
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "method,p,n,s,v,g", list(golden_grid()), ids=lambda val: str(val)
)
def test_bounds_contain_sim_and_floor_is_sound(method, p, n, s, v, g):
    problem = build_problem(
        method, p, n, num_slices=s, virtual_size=v, wgrad_gemms=g
    )
    schedule = build_schedule(method, problem)
    cost = imbalanced_cost(problem, s)
    sim = simulate(schedule, cost)
    bounds = iteration_time_bounds(problem, cost)
    assert bounds is not None  # UniformCost is micro-batch invariant
    assert bounds.lower <= sim.iteration_time <= bounds.upper
    assert bounds.certificate.kind == "bounded"
    assert bounds.certificate.consistent()
    assert peak_units_floor(problem, cost) <= sim.peak_activation_units


def test_certificate_is_exact_and_versioned():
    problem = build_problem("mepipe", 4, 4, num_slices=4, wgrad_gemms=3)
    schedule = build_schedule("mepipe", problem)
    ev = evaluate_schedule(schedule, UniformCost(problem, tw=0.5))
    cert = ev.certificate
    assert cert.kind == "exact"
    assert cert.version == EVALUATOR_VERSION
    assert cert.lower == ev.iteration_time == cert.upper
    assert cert.consistent() and cert.contains(ev.iteration_time)


def test_phases_tile_each_stage():
    problem = build_problem("mepipe", 4, 8, num_slices=4, wgrad_gemms=3)
    schedule = build_schedule("mepipe", problem)
    ev = evaluate_schedule(schedule, UniformCost(problem, tw=0.5))
    for s, ph in enumerate(ev.phases):
        assert ph.ordered()
        assert ph.stage == s
        assert ph.end == ev.stage_ends[s]
        assert ph.warmup + ph.steady + ph.cooldown == pytest.approx(ph.end)
    # The first stage's warmup holds its forwards-before-first-backward.
    assert ev.phases[0].warmup > 0.0


def test_non_invariant_cost_declines_bounds():
    problem = build_problem("mepipe", 4, 8, num_slices=2, wgrad_gemms=2)

    class PerMicrobatchCost:
        def duration(self, op):
            return 1.0 + 0.25 * (op.microbatch % 3)

        def comm_time(self, dep, op):
            return 0.0

        def act_units(self, op):
            return 1.0

    assert iteration_time_bounds(problem, PerMicrobatchCost()) is None
    assert peak_units_floor(problem, PerMicrobatchCost()) == 0.0


# ----------------------------------------------------------------------
# Planner tiering: identical optimum, identical frontier
# ----------------------------------------------------------------------
def row_key(r):
    return (r.config, r.iteration_time_s, r.peak_memory_bytes, r.oom)


def test_tiered_search_matches_sim_search():
    tiered = search_method(
        "mepipe", LLAMA_13B, RTX4090_CLUSTER, GBS, evaluator="tiered"
    )
    sim = search_method(
        "mepipe", LLAMA_13B, RTX4090_CLUSTER, GBS, evaluator="sim"
    )
    # The optimum is identical including provenance: the tiered sweep
    # re-evaluates its frontier at "sim" tier.
    assert tiered.best == sim.best
    assert tiered.evaluator == "tiered" and sim.evaluator == "sim"
    assert [row_key(r) for r in pareto_frontier(tiered.evaluated)] == [
        row_key(r) for r in pareto_frontier(sim.evaluated)
    ]
    assert all(r.tier == "sim" for r in pareto_frontier(tiered.evaluated))
    # Every row the tiered sweep did evaluate carries the sim sweep's
    # exact numbers (the analytic tier is bit-exact).
    sim_rows = {r.config: row_key(r) for r in sim.evaluated}
    for r in tiered.evaluated:
        assert row_key(r) == sim_rows[r.config]
    # Every pruned candidate names its certified dominator.
    analytic_skips = [
        s for s in tiered.skipped if s.reason.startswith("analytic:")
    ]
    for skip in analytic_skips:
        assert "dominated by" in skip.reason
        assert skip.config not in {r.config for r in tiered.evaluated}


def test_unknown_evaluator_rejected():
    with pytest.raises(ValueError, match="unknown search evaluator"):
        search_method(
            "mepipe", LLAMA_13B, RTX4090_CLUSTER, GBS, evaluator="bogus"
        )


def test_all_oom_sweeps_survive_tiering():
    """All-OOM sweeps never find an incumbent, so nothing is pruned and
    the all-OOM verdict (every row in the trail) is preserved."""
    tiered = search_method(
        "mepipe", LLAMA_13B, RTX4090_CLUSTER, GBS,
        evaluator="tiered", min_dp=16,
    )
    sim = search_method(
        "mepipe", LLAMA_13B, RTX4090_CLUSTER, GBS,
        evaluator="sim", min_dp=16,
    )
    assert tiered.all_oom and sim.all_oom
    assert {row_key(r) for r in tiered.evaluated} == {
        row_key(r) for r in sim.evaluated
    }


# ----------------------------------------------------------------------
# Sweep cache: tiers never alias (satellite: fingerprint versioning)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_cache_entry_for_one_tier_misses_for_the_other(tmp_path, seed):
    spp = random.Random(seed).choice([2, 4, 8])
    sim_task = EvalTask(
        "mepipe", LLAMA_13B, RTX4090_CLUSTER,
        ParallelConfig(dp=8, pp=8, spp=spp), GBS,
    )
    analytic_task = dataclasses.replace(sim_task, tier="analytic")
    assert eval_fingerprint(sim_task) != eval_fingerprint(analytic_task)

    cache = SweepCache(tmp_path)
    (outcome,) = evaluate_tasks([analytic_task], cache=cache)
    assert outcome.ok and outcome.result.tier == "analytic"
    # The analytic entry is warm for its own tier...
    hit = cache.get(analytic_task)
    assert hit is not None and hit.result.tier == "analytic"
    # ...and stale (a miss) for the sim tier: no aliasing.
    assert cache.get(sim_task) is None


def test_evaluator_version_is_part_of_the_fingerprint(monkeypatch):
    task = EvalTask(
        "mepipe", LLAMA_13B, RTX4090_CLUSTER,
        ParallelConfig(dp=8, pp=8, spp=4), GBS, tier="analytic",
    )
    before = eval_fingerprint(task)
    monkeypatch.setattr(
        "repro.planner.parallel.EVALUATOR_VERSION", EVALUATOR_VERSION + 1
    )
    assert eval_fingerprint(task) != before
