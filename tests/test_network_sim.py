"""Tests for the queued-link network replay."""

import pytest

from repro.schedules import build_problem, build_schedule
from repro.sim import UniformCost, simulate
from repro.sim.network import Link, NetworkModel, simulate_with_network


def setup(method="mepipe", p=4, n=8, **kw):
    problem = build_problem(method, p, n, **kw)
    schedule = build_schedule(method, problem)
    cost = UniformCost(problem, tf=0.1, tb=0.2, tw=0.1)
    return problem, schedule, cost


class TestLink:
    def test_back_to_back_transfers_serialize(self):
        link = Link(bandwidth_bytes_per_s=1e6, latency_s=0.0)
        first = link.transfer(1_000_000, ready=0.0)
        second = link.transfer(1_000_000, ready=0.0)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)
        assert link.queue_delay == pytest.approx(1.0)

    def test_idle_link_no_queueing(self):
        link = Link(bandwidth_bytes_per_s=1e6)
        link.transfer(1000, ready=0.0)
        link.transfer(1000, ready=10.0)
        assert link.queue_delay == 0.0


class TestNetworkReplay:
    def test_infinite_bandwidth_matches_zero_comm_executor(self):
        problem, schedule, cost = setup(num_slices=2, wgrad_gemms=2)
        base = simulate(schedule, cost)
        net = NetworkModel.uniform(4, 1e15, edge_bytes=1e6, latency_s=0.0)
        replay = simulate_with_network(schedule, cost, net)
        assert replay.makespan == pytest.approx(base.makespan, rel=1e-6)
        assert replay.bubble_ratio == pytest.approx(base.bubble_ratio, abs=1e-6)

    def test_slow_links_stretch_makespan(self):
        problem, schedule, cost = setup(num_slices=2, wgrad_gemms=2)
        fast = simulate_with_network(
            schedule, cost, NetworkModel.uniform(4, 1e12, edge_bytes=10e6))
        slow = simulate_with_network(
            schedule, cost, NetworkModel.uniform(4, 1e8, edge_bytes=10e6))
        assert slow.makespan > fast.makespan

    def test_contention_emerges_from_bursts(self):
        """Slicing quadruples message count; on a slow link the queueing
        delay becomes visible."""
        _p, schedule, cost = setup(num_slices=4, wgrad_gemms=2, n=16, p=8)
        net = NetworkModel.uniform(8, 2e8, edge_bytes=10e6)
        simulate_with_network(schedule, cost, net)
        assert net.total_queue_delay > 0.0

    def test_transfer_accounting(self):
        problem, schedule, cost = setup(method="dapple", p=4, n=4)
        net = NetworkModel.uniform(4, 1e9, edge_bytes=1e6)
        simulate_with_network(schedule, cost, net)
        transfers = sum(link.transfers for link in net.links.values())
        # n micro-batches cross p-1 boundaries forward and backward.
        assert transfers == 4 * 3 * 2

    def test_memory_ledger_matches_executor(self):
        problem, schedule, cost = setup(method="svpp", num_slices=2)
        base = simulate(schedule, cost)
        replay = simulate_with_network(
            schedule, cost, NetworkModel.uniform(4, 1e12, edge_bytes=1e6))
        assert replay.peak_activation_units == pytest.approx(
            base.peak_activation_units)

    def test_all_ops_executed(self):
        problem, schedule, cost = setup(num_slices=2, wgrad_gemms=3)
        replay = simulate_with_network(
            schedule, cost, NetworkModel.uniform(4, 1e9, edge_bytes=1e6))
        assert len(replay.records) == len(problem.all_ops())
