"""Tests for repro.model.spec."""

import pytest

from repro.model import LLAMA_7B, LLAMA_13B, LLAMA_34B, ModelSpec, get_model, tiny_spec


class TestPresets:
    def test_table4_hidden_sizes(self):
        assert LLAMA_7B.hidden_size == 4096
        assert LLAMA_13B.hidden_size == 5120
        assert LLAMA_34B.hidden_size == 8192

    def test_table4_layer_counts(self):
        # Two transformer layers removed per Section 7.1.
        assert LLAMA_7B.num_layers == 30
        assert LLAMA_13B.num_layers == 38
        assert LLAMA_34B.num_layers == 46

    def test_param_counts_near_nominal(self):
        # Nominal sizes with two layers removed land slightly below the
        # marketing numbers.
        assert 6.0e9 < LLAMA_7B.total_params() < 7.0e9
        assert 12.0e9 < LLAMA_13B.total_params() < 13.5e9
        assert 31.0e9 < LLAMA_34B.total_params() < 34.5e9

    def test_seq_length_default(self):
        for spec in (LLAMA_7B, LLAMA_13B, LLAMA_34B):
            assert spec.seq_length == 4096

    def test_gqa_only_on_34b(self):
        assert LLAMA_7B.kv_heads == LLAMA_7B.num_heads
        assert LLAMA_34B.kv_heads == 8

    def test_balanced_layer_count_13b_is_40(self):
        # Section 7.2: "Llama 13B comprises 40 layers (including the
        # embedding and head layer)".
        assert LLAMA_13B.balanced_layer_count() == 40


class TestLookup:
    def test_get_model_short_and_full_names(self):
        assert get_model("13b") is LLAMA_13B
        assert get_model("llama-34b") is LLAMA_34B

    def test_get_model_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")


class TestValidation:
    def test_hidden_not_divisible_by_heads(self):
        with pytest.raises(ValueError):
            ModelSpec(name="bad", hidden_size=100, num_layers=2, num_heads=3,
                      ffn_hidden_size=256)

    def test_kv_heads_must_divide_heads(self):
        with pytest.raises(ValueError):
            ModelSpec(name="bad", hidden_size=64, num_layers=2, num_heads=4,
                      num_kv_heads=3, ffn_hidden_size=256)

    def test_head_dim(self):
        assert LLAMA_13B.head_dim == 128


class TestPipelineHelpers:
    def test_max_stages_vpp_limits_13b(self):
        # 40 slots: with v=2 the max even split is p=4 stages of 5-layer
        # chunks... p*v must divide 40; largest p with p*2 | 40 is 20,
        # but Section 7.2 uses the practical constraint p power-of-two.
        assert LLAMA_13B.max_pipeline_stages(1) == 40
        assert LLAMA_13B.max_pipeline_stages(2) == 20

    def test_tiny_spec_valid(self):
        t = tiny_spec()
        assert t.total_params() > 0
        assert t.head_dim * t.num_heads == t.hidden_size
