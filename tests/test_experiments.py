"""Tests for the experiment modules (fast artifacts only; the heavy
grid searches are exercised by the benchmark suite)."""

import pytest

from repro.experiments import REGISTRY, ablations, e0, fig1, fig9, fig1112, tables23
from repro.experiments.common import ExperimentReport


class TestReportPlumbing:
    def test_render_contains_header_and_rows(self):
        report = ExperimentReport("x", "demo", ["a", "b"])
        report.add_row(1, 2.5)
        report.add_note("hello")
        text = report.render()
        assert "demo" in text and "2.5" in text and "note: hello" in text

    def test_cell_and_column_lookup(self):
        report = ExperimentReport("x", "demo", ["a", "b"])
        report.add_row("p", "q")
        report.add_row("r", "s")
        assert report.cell(1, "b") == "s"
        assert report.column("a") == ["p", "r"]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"e0", "fig1", "table2", "table3", "fig8", "table6",
                    "table7", "fig9", "fig10", "fig11-12", "table9"}
        assert expected <= set(REGISTRY)

    def test_registry_entries_callable(self):
        for fn in REGISTRY.values():
            assert callable(fn)


class TestFig1:
    def test_points_cover_all_series(self):
        points = fig1.compute_points()
        assert len(points) == len(fig1.SERIES)

    def test_svpp_memory_dominates(self):
        points = {p.label: p for p in fig1.compute_points()}
        assert points["SVPP s=8"].activation_gb < points["SVPP s=4"].activation_gb
        assert points["SVPP s=4"].activation_gb < points["DAPPLE"].activation_gb

    def test_report_notes_thresholds(self):
        report = fig1.run()
        assert any(">70" in n for n in report.notes)
        assert any(">80" in n for n in report.notes)


class TestFig9:
    def test_spp_dominates_cp(self):
        perf = {(p.kind, p.size): p for p in fig9.compute()}
        for size in (2, 4, 8):
            assert (perf[("spp", size)].relative_throughput
                    > perf[("cp", size)].relative_throughput)

    def test_size_one_is_baseline(self):
        perf = {(p.kind, p.size): p for p in fig9.compute()}
        assert perf[("cp", 1)].relative_throughput == pytest.approx(1.0)
        assert perf[("spp", 1)].relative_throughput == pytest.approx(1.0)


class TestTables23:
    def test_table2_renders(self):
        report = tables23.run_table2()
        assert len(report.rows) == 5

    def test_table3_small_shape(self):
        report = tables23.run_table3(p=4, n=4)
        assert len(report.rows) == len(tables23.TABLE3_ROWS)
        for row in report.rows:
            assert abs(float(row[3]) - float(row[4])) < 1e-3


class TestE0:
    def test_all_methods_pass(self):
        report = e0.run(num_stages=2, num_microbatches=2)
        assert all(s == "PASS" for s in report.column("status"))


class TestFineGrained:
    def test_ablation_same_total_work(self):
        ablation = fig1112.compute(wgrad_gemms=2)
        with_busy = sum(s.busy_time for s in ablation.with_fine_grained.stages)
        without_busy = sum(
            s.busy_time for s in ablation.without_fine_grained.stages)
        assert with_busy == pytest.approx(without_busy, rel=1e-6)

    def test_no_regression_at_4k(self):
        ablation = fig1112.compute(wgrad_gemms=2)
        assert ablation.improvement > -0.02

    def test_long_context_gain(self):
        ablation = fig1112.compute_long_context()
        assert ablation.improvement > 0.03


class TestAblations:
    def test_reschedule_report(self):
        report = ablations.run_reschedule()
        assert float(report.cell(0, "bubble")) <= float(report.cell(1, "bubble"))

    def test_variant_sweep_monotone_memory(self):
        report = ablations.run_variant_sweep()
        mems = [float(r[2]) for r in report.rows]
        assert mems == sorted(mems, reverse=True)
