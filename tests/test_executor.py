"""Tests for the discrete-event executor and its memory ledger."""

import pytest

from repro.schedules import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
    StageProgram,
    build_problem,
    build_schedule,
)
from repro.sim import UniformCost, simulate
from repro.sim.executor import _Ledger


class TestReplay:
    def test_two_stage_hand_timed(self):
        """Hand-check op times for a 2-stage, 2-microbatch 1F1B."""
        pr = PipelineProblem(num_stages=2, num_microbatches=2)
        sch = build_schedule("dapple", pr)
        r = simulate(sch, UniformCost(pr, tf=1, tb=2))
        rec = r.records
        assert rec[OpId(OpKind.F, 0, 0, 0)].start == 0.0
        assert rec[OpId(OpKind.F, 0, 0, 1)].start == 1.0
        assert rec[OpId(OpKind.B, 0, 0, 1)].start == 2.0
        assert rec[OpId(OpKind.B, 0, 0, 0)].start == 4.0
        assert rec[OpId(OpKind.B, 1, 0, 0)].start == 7.0
        assert r.makespan == pytest.approx(9.0)

    def test_comm_latency_shifts_downstream(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=1)

        class LatencyCost(UniformCost):
            def comm_time(self, dep, op):
                return 0.5 if self.problem.is_cross_stage(dep, op) else 0.0

        sch = build_schedule("gpipe", pr)
        r = simulate(sch, LatencyCost(pr, tf=1, tb=2))
        assert r.records[OpId(OpKind.F, 0, 0, 1)].start == pytest.approx(1.5)

    def test_stage_never_overlaps_itself(self):
        pr = build_problem("mepipe", 4, 6, num_slices=2, wgrad_gemms=2)
        r = simulate(build_schedule("mepipe", pr), UniformCost(pr, tw=0.5))
        for stage in range(4):
            records = r.stage_records(stage)
            for a, b in zip(records, records[1:]):
                assert b.start >= a.end - 1e-9

    def test_deadlocked_program_raises(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=1)
        programs = [
            StageProgram(0, [OpId(OpKind.B, 0, 0, 0), OpId(OpKind.F, 0, 0, 0)]),
            StageProgram(1, [OpId(OpKind.F, 0, 0, 1), OpId(OpKind.B, 0, 0, 1)]),
        ]
        with pytest.raises(ScheduleError, match="deadlock"):
            simulate(Schedule(pr, programs), UniformCost(pr))

    def test_overhead_time_added(self):
        pr = build_problem("dapple", 2, 2)
        r = simulate(build_schedule("dapple", pr), UniformCost(pr),
                     overhead_time=1.5)
        assert r.iteration_time == pytest.approx(r.makespan + 1.5)

    def test_bubble_ratio_bounds(self):
        pr = build_problem("dapple", 4, 4)
        r = simulate(build_schedule("dapple", pr), UniformCost(pr))
        assert 0.0 < r.bubble_ratio < 1.0
        for s in range(4):
            assert 0.0 <= r.stage_bubble_ratio(s) < 1.0

    def test_single_stage_has_no_bubbles(self):
        pr = PipelineProblem(num_stages=1, num_microbatches=4)
        r = simulate(build_schedule("gpipe", pr), UniformCost(pr))
        assert r.bubble_ratio == pytest.approx(0.0)


class TestLedger:
    def test_fused_backward_releases_at_b(self):
        pr = PipelineProblem(num_stages=1, num_microbatches=1)
        ledger = _Ledger(problem=pr)
        ledger.apply(OpId(OpKind.F, 0, 0, 0), 1.0)
        assert ledger.current == 1.0
        ledger.apply(OpId(OpKind.B, 0, 0, 0), 1.0)
        assert ledger.current == 0.0
        assert ledger.peak == 1.0

    def test_split_backward_holds_until_w(self):
        pr = PipelineProblem(num_stages=1, num_microbatches=1,
                             split_backward=True, wgrad_gemms=2)
        ledger = _Ledger(problem=pr, actgrad_factor=1.0)
        ledger.apply(OpId(OpKind.F, 0, 0, 0), 1.0)
        ledger.apply(OpId(OpKind.B, 0, 0, 0), 1.0)
        assert ledger.current == pytest.approx(2.0)  # act + actgrad
        ledger.apply(OpId(OpKind.W, 0, 0, 0, 0), 1.0)
        assert ledger.current == pytest.approx(1.0)
        ledger.apply(OpId(OpKind.W, 0, 0, 0, 1), 1.0)
        assert ledger.current == pytest.approx(0.0)
        assert ledger.peak == pytest.approx(2.0)

    def test_actgrad_factor_scales_b_pin(self):
        pr = PipelineProblem(num_stages=1, num_microbatches=1,
                             split_backward=True)
        ledger = _Ledger(problem=pr, actgrad_factor=0.5)
        ledger.apply(OpId(OpKind.F, 0, 0, 0), 1.0)
        ledger.apply(OpId(OpKind.B, 0, 0, 0), 1.0)
        assert ledger.peak == pytest.approx(1.5)


class TestUniformCost:
    def test_slice_scaling(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=1, num_slices=4)
        cost = UniformCost(pr, tf=1.0)
        assert cost.duration(OpId(OpKind.F, 0, 0, 0)) == pytest.approx(0.25)

    def test_chunk_scaling(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=1, virtual_size=2)
        cost = UniformCost(pr, tf=1.0)
        assert cost.duration(OpId(OpKind.F, 0, 0, 0)) == pytest.approx(0.5)

    def test_imbalance_reweights_slices(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=1, num_slices=2)
        cost = UniformCost(pr, tf=1.0, imbalance=(0.75, 1.0))
        t0 = cost.duration(OpId(OpKind.F, 0, 0, 0))
        t1 = cost.duration(OpId(OpKind.F, 0, 1, 0))
        assert t0 / t1 == pytest.approx(0.75)
        assert t0 + t1 == pytest.approx(1.0)

    def test_wgrad_fragments_split_evenly(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=1,
                             split_backward=True, wgrad_gemms=4)
        cost = UniformCost(pr, tw=1.0)
        w = cost.duration(OpId(OpKind.W, 0, 0, 0, 0))
        assert w == pytest.approx(1.0 / 4)
