"""Tests of the Table 3 closed forms and Figure 1 relationships."""

import pytest

from repro.schedules import (
    analyze,
    dapple_analysis,
    hanayo_analysis,
    svpp_analysis,
    svpp_limit_analysis,
    terapipe_analysis,
    vpp_analysis,
)


class TestClosedForms:
    def test_dapple_values(self):
        a = dapple_analysis(8, 8)
        assert a.bubble_ratio == pytest.approx(7 / 15)
        assert a.memory_units == 1.0

    def test_dapple_large_cluster_memory(self):
        assert dapple_analysis(8, 4).memory_units == pytest.approx(0.5)

    def test_vpp_rejects_small_n(self):
        with pytest.raises(ValueError):
            vpp_analysis(8, 4, 2)

    def test_terapipe_memory_flat_in_s(self):
        assert terapipe_analysis(8, 8, 2).memory_units == \
            terapipe_analysis(8, 8, 16).memory_units

    def test_svpp_limit(self):
        limit = svpp_limit_analysis(8, 8)
        assert limit.bubble_ratio == 0.0
        assert limit.memory_units == pytest.approx(1 / 8)

    def test_svpp_approaches_limit(self):
        """As s grows, SVPP's memory tends to A/p and bubble to 0."""
        p, n = 8, 8
        prev = svpp_analysis(p, n, 2)
        for s in (4, 8, 16, 32, 64):
            cur = svpp_analysis(p, n, s)
            assert cur.bubble_ratio < prev.bubble_ratio
            assert cur.memory_units <= prev.memory_units
            prev = cur
        assert prev.memory_units == pytest.approx(1 / p, rel=0.3)

    def test_analyze_dispatch(self):
        assert analyze("mepipe", 8, 8, s=4).method == "svpp"
        with pytest.raises(KeyError):
            analyze("chimera", 8, 8)


class TestFigure1Relationships:
    """Figure 1: SVPP dominates the bubble/memory plane at p=8, v=2, n=8."""

    P, N, V = 8, 8, 2

    def test_svpp_lowest_memory(self):
        svpp4 = svpp_analysis(self.P, self.N, 4, self.V)
        svpp8 = svpp_analysis(self.P, self.N, 8, self.V)
        others = [
            dapple_analysis(self.P, self.N),
            vpp_analysis(self.P, self.N, self.V),
            hanayo_analysis(self.P, self.N, self.V),
            terapipe_analysis(self.P, self.N, 4),
        ]
        for other in others:
            assert svpp4.memory_units < other.memory_units
            assert svpp8.memory_units < svpp4.memory_units

    def test_svpp_lowest_bubble(self):
        svpp8 = svpp_analysis(self.P, self.N, 8, self.V)
        others = [
            dapple_analysis(self.P, self.N),
            vpp_analysis(self.P, self.N, self.V),
            hanayo_analysis(self.P, self.N, self.V),
            terapipe_analysis(self.P, self.N, 4),
        ]
        for other in others:
            assert svpp8.bubble_ratio < other.bubble_ratio

    def test_memory_reduction_thresholds(self):
        """Section 1: >70% reduction at s=4, >80% at s=8 (vs DAPPLE)."""
        base = dapple_analysis(self.P, self.N).memory_units
        s4 = svpp_analysis(self.P, self.N, 4, self.V).memory_units
        s8 = svpp_analysis(self.P, self.N, 8, self.V).memory_units
        assert 1 - s4 / base > 0.70
        assert 1 - s8 / base > 0.80

    def test_n_lt_p_svpp_still_best_bubble(self):
        p, n = 16, 4
        svpp = svpp_analysis(p, n, 8, 2)
        assert svpp.bubble_ratio < dapple_analysis(p, n).bubble_ratio
        assert svpp.bubble_ratio < terapipe_analysis(p, n, 8).bubble_ratio
        assert svpp.memory_units <= dapple_analysis(p, n).memory_units
        # At v=1 SVPP's bubble coincides with TeraPipe's; virtual chunks
        # are what push it below (Table 3, large-cluster column).
        assert svpp_analysis(p, n, 8, 1).bubble_ratio == pytest.approx(
            terapipe_analysis(p, n, 8).bubble_ratio)
