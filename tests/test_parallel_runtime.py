"""The multi-process pipeline executor (repro.pipeline.parallel_runtime).

The contract under test: :class:`ParallelPipelineRuntime` is the serial
:class:`PipelineRuntime` with real concurrency — gradients, loss, op
counts, and per-stage memory peaks are **bit-for-bit identical** across
the full E0 schedule grid; comm/wgrad overlap becomes a measured
wall-clock quantity; and a failing worker surfaces as a diagnosable
:class:`ScheduleError` with no orphan processes or leaked shared-memory
segments.
"""

import glob
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import Adam, build_model
from repro.pipeline import FaultSpec, ParallelPipelineRuntime, PipelineRuntime
from repro.schedules import ScheduleError, build_problem, build_schedule

SPEC = tiny_spec(hidden_size=32, num_layers=6, num_heads=4,
                 ffn_hidden_size=64, vocab_size=31, seq_length=16)
N, B = 4, 2

#: The E0 acceptance grid (mirrors repro.experiments.e0.METHOD_SETUPS):
#: classic fused-backward baselines plus the split-backward W-deferral
#: family the parallel executor exists to measure.
GRID = [
    ("dapple", {}),
    ("terapipe", {"num_slices": 4}),
    ("vpp", {"virtual_size": 2}),
    ("zb", {}),
    ("zbv", {}),
    ("svpp", {"num_slices": 4, "virtual_size": 2}),
    ("mepipe", {"num_slices": 4, "wgrad_gemms": 3}),
]


@pytest.fixture(scope="module")
def data():
    return token_batches(SPEC.vocab_size, N, B, SPEC.seq_length, seed=5)


def build(method, p=4, **kwargs):
    problem = build_problem(method, p, N, **kwargs)
    return build_schedule(method, problem)


def run_serial(schedule, data):
    tokens, targets = data
    model = build_model(SPEC, seed=11)
    result = PipelineRuntime(model, tokens, targets).run(schedule)
    return model, result


def run_parallel(schedule, data, timeout=60.0, **kwargs):
    tokens, targets = data
    model = build_model(SPEC, seed=11)
    runtime = ParallelPipelineRuntime(model, tokens, targets, timeout=timeout)
    result = runtime.run(schedule, **kwargs)
    return model, result


def shm_leftovers():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return glob.glob("/dev/shm/repro*")


class TestBitExactness:
    """Parallel == serial, bit for bit, across the E0 grid."""

    @pytest.mark.parametrize("method,kwargs", GRID,
                             ids=[f"{m}-{k}" for m, k in GRID])
    def test_matches_serial_golden(self, data, method, kwargs):
        schedule = build(method, **kwargs)
        serial_model, serial = run_serial(schedule, data)
        parallel_model, parallel = run_parallel(schedule, data)

        assert parallel.loss == serial.loss  # bit-identical, not approx
        serial_grads = serial_model.named_grads()
        for key, grad in parallel_model.named_grads().items():
            assert np.array_equal(grad, serial_grads[key]), key
        assert parallel.ops_executed == serial.ops_executed
        assert parallel.stage_peak_bytes == serial.stage_peak_bytes
        assert parallel.peak_live_contexts == serial.peak_live_contexts
        assert parallel.executor == "parallel"
        assert serial.executor == "serial"

    def test_comm_volume_matches_serial(self, data):
        schedule = build("mepipe", p=2, num_slices=2, wgrad_gemms=2)
        _m, serial = run_serial(schedule, data)
        _m, parallel = run_parallel(schedule, data)
        assert parallel.comms.messages == serial.comms.messages
        assert parallel.comms.bytes_total == serial.comms.bytes_total

    def test_training_loop_matches_serial(self, data):
        """Gradient merge composes with Adam across iterations."""
        tokens, targets = data
        schedule = build("mepipe", p=2, num_slices=2, wgrad_gemms=2)

        losses = {}
        for cls in (PipelineRuntime, ParallelPipelineRuntime):
            model = build_model(SPEC, seed=11)
            runtime = cls(model, tokens, targets)
            optimizer = Adam(model, lr=3e-3)
            trail = []
            for _step in range(3):
                trail.append(runtime.run(schedule).loss)
                optimizer.step()
            losses[cls.__name__] = trail
        assert losses["ParallelPipelineRuntime"] == losses["PipelineRuntime"]


class TestMeasuredOverlap:
    def test_wgrad_overlap_is_nonzero(self, data):
        """On a split-backward schedule with >= 2 stages, deferred W ops
        measurably execute while channel receives are pending."""
        schedule = build("mepipe", p=2, num_slices=4, wgrad_gemms=3)
        _m, result = run_parallel(schedule, data)
        assert result.overlap_w_seconds > 0.0
        assert any(s.wait_seconds > 0.0 for s in result.stage_stats)
        # Overlapped W time is part of busy time, never double-counted.
        for s in result.stage_stats:
            assert s.overlap_w_seconds <= s.busy_seconds + 1e-9

    def test_wall_clock_and_bubble_are_measured(self, data):
        schedule = build("mepipe", p=2, num_slices=4, wgrad_gemms=3)
        _m, result = run_parallel(schedule, data)
        assert result.wall_seconds > 0.0
        assert 0.0 <= result.bubble_ratio < 1.0
        for s in result.stage_stats:
            assert 0.0 < s.busy_seconds <= result.wall_seconds
        # Per-stage records stay within the iteration window, in order.
        for stage in range(2):
            records = result.stage_records(stage)
            starts = [r.start for r in records]
            assert starts == sorted(starts)
            assert all(r.end <= result.wall_seconds + 1e-6 for r in records)


class TestFailureHandling:
    def test_worker_exception_surfaces_with_traceback(self, data):
        schedule = build("mepipe", p=2, num_slices=2, wgrad_gemms=2)
        tokens, targets = data
        model = build_model(SPEC, seed=11)
        runtime = ParallelPipelineRuntime(model, tokens, targets, timeout=20.0)
        with pytest.raises(ScheduleError, match="injected fault"):
            runtime.run(schedule, fault=FaultSpec(stage=1, op_index=0))
        assert not any(
            p.name.startswith("repro-stage") for p in mp.active_children()
        )
        assert shm_leftovers() == []

    def test_killed_worker_surfaces_without_hang(self, data):
        schedule = build("mepipe", p=2, num_slices=2, wgrad_gemms=2)
        tokens, targets = data
        model = build_model(SPEC, seed=11)
        runtime = ParallelPipelineRuntime(model, tokens, targets, timeout=20.0)
        with pytest.raises(ScheduleError, match="died without reporting"):
            runtime.run(
                schedule, fault=FaultSpec(stage=1, op_index=2, mode="exit")
            )
        assert not any(
            p.name.startswith("repro-stage") for p in mp.active_children()
        )
        assert shm_leftovers() == []

    def test_shape_mismatch_raises_before_spawn(self, data):
        tokens, targets = data
        problem = build_problem("dapple", 4, N + 1)
        schedule = build_schedule("dapple", problem)
        runtime = ParallelPipelineRuntime(
            build_model(SPEC, seed=11), tokens, targets)
        with pytest.raises(ScheduleError, match="micro-batches"):
            runtime.run(schedule)


class TestTelemetry:
    def test_records_one_track_per_worker(self, data):
        from repro.obs.sinks import MemorySink

        schedule = build("mepipe", p=2, num_slices=2, wgrad_gemms=2)
        tokens, targets = data
        model = build_model(SPEC, seed=11)
        sink = MemorySink()
        result = ParallelPipelineRuntime(model, tokens, targets).run(
            schedule, sink)

        spans = [e for e in sink.events if e.kind == "span"]
        assert {e.tid for e in spans} == {0, 1}  # one tid per worker
        assert len(spans) == result.ops_executed
        names = {e.name for e in sink.events if e.kind == "meta"}
        assert "thread_name" in names
        # The parallel executor emits its overlap/wait counter series.
        assert sink.counters("overlap_w_seconds")
        assert sink.counters("wait_seconds")

    def test_metrics_protocol_unchanged(self, data):
        schedule = build("mepipe", p=2, num_slices=2, wgrad_gemms=2)
        _m, result = run_parallel(schedule, data)
        metrics = result.metrics()
        assert metrics.source == "runtime"
        assert metrics.time_unit == "seconds"
        assert metrics.ops_executed == result.ops_executed
        assert len(metrics.span_table) == result.ops_executed


class TestTraceCLI:
    def test_trace_renders_parallel_next_to_sim(self, tmp_path, capsys):
        """`repro trace --substrate parallel` lays the measured parallel
        iteration alongside the simulated one, same viewer schema."""
        import json

        from repro.cli import main

        out = tmp_path / "trace.json"
        status = main([
            "trace", "mepipe", "--p", "2", "--n", "2", "--s", "2",
            "--wgrad-gemms", "2", "--substrate", "parallel",
            "--out", str(out),
        ])
        assert status == 0
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {0, 2}  # simulated + parallel-executed
        names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"simulated", "parallel"}
        # One op-span row per stage inside the parallel process group.
        parallel_tids = {
            e["tid"] for e in events if e["pid"] == 2 and e["ph"] == "X"
        }
        assert parallel_tids == {0, 1}
