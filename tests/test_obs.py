"""The unified telemetry bus (``repro.obs``) and the result/metrics API.

Covers the event primitives and span-nesting invariants, the concrete
sinks (memory, JSONL round-trip, Chrome trace), golden compatibility of
the Chrome export with the legacy ``repro.viz.trace`` output over the
whole E0 method grid, sim-vs-runtime trace alignment (the two
substrates emit the same op rows), and the instrumentation hooks of all
four substrates (simulator, runtime, profiler, planner).
"""

import io
import json

import pytest

from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import build_model
from repro.obs import (
    NULL_SINK,
    ChromeTraceSink,
    Event,
    EventSink,
    IterationMetrics,
    JsonlSink,
    MemorySink,
    ObsError,
    PipelineResult,
    TeeSink,
    chrome_trace,
    read_jsonl,
    record_iteration,
    schedule_comm_log,
    sim_chrome_trace,
)
from repro.pipeline import PipelineRuntime
from repro.schedules import build_problem, build_schedule
from repro.sim import UniformCost, simulate

SPEC = tiny_spec(hidden_size=32, num_layers=6, num_heads=4,
                 ffn_hidden_size=64, vocab_size=31, seq_length=16)
N, B, P = 4, 2, 4


def _mepipe_schedule(p=2):
    problem = build_problem("mepipe", p, N, num_slices=2, wgrad_gemms=3)
    return build_schedule("mepipe", problem)


def _run_runtime(schedule, sink=NULL_SINK, seed=11):
    tokens, targets = token_batches(
        SPEC.vocab_size, N, B, SPEC.seq_length, seed=5)
    model = build_model(SPEC, seed=seed)
    return PipelineRuntime(model, tokens, targets).run(schedule, sink=sink)


# ----------------------------------------------------------------------
# Event primitives
# ----------------------------------------------------------------------
class TestEvent:
    def test_round_trip(self):
        event = Event(kind="span", name="F0.1", ts=1.5, dur=0.5, tid=2,
                      pid=1, cat="F", args={"microbatch": 0, "slice": 1})
        assert Event.from_dict(event.to_dict()) == event

    def test_round_trip_defaults(self):
        event = Event(kind="instant", name="x")
        assert Event.from_dict(event.to_dict()) == event

    def test_arg_and_end(self):
        event = Event(kind="span", name="op", ts=2.0, dur=3.0,
                      args={"chunk": 7})
        assert event.arg("chunk") == 7
        assert event.arg("missing") is None
        assert event.end == 5.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObsError):
            Event(kind="bogus", name="x")

    def test_events_are_hashable(self):
        assert len({Event(kind="meta", name="a", args={"k": 1})} |
                   {Event(kind="meta", name="a", args={"k": 1})}) == 1


# ----------------------------------------------------------------------
# Span begin/end invariants
# ----------------------------------------------------------------------
class TestSpanNesting:
    def test_nested_spans_are_contained(self):
        sink = MemorySink()
        sink.begin("outer", ts=0.0, tid=1)
        sink.begin("inner", ts=1.0, tid=1)
        sink.end(ts=2.0, tid=1)
        sink.end(ts=5.0, tid=1)
        inner, outer = sink.spans()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert outer.ts <= inner.ts and inner.end <= outer.end

    def test_tracks_are_independent(self):
        sink = MemorySink()
        sink.begin("a", ts=0.0, tid=0)
        sink.begin("b", ts=0.0, tid=1)
        sink.end(ts=1.0, tid=1)
        sink.end(ts=2.0, tid=0)
        assert [s.name for s in sink.spans()] == ["b", "a"]

    def test_unbalanced_end_raises(self):
        with pytest.raises(ObsError, match="end without begin"):
            MemorySink().end(ts=1.0)

    def test_backwards_time_raises(self):
        sink = MemorySink()
        sink.begin("x", ts=5.0)
        with pytest.raises(ObsError, match="before it begins"):
            sink.end(ts=1.0)

    def test_close_with_open_span_raises(self):
        sink = MemorySink()
        sink.begin("x", ts=0.0)
        with pytest.raises(ObsError, match="still open"):
            sink.close()

    def test_context_manager_closes_cleanly(self):
        with MemorySink() as sink:
            sink.begin("x", ts=0.0)
            sink.end(ts=1.0)
        assert len(sink.spans()) == 1


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TestMemorySink:
    def test_orders_and_filters(self):
        sink = MemorySink()
        sink.span("s", ts=0.0, dur=1.0)
        sink.instant("i", ts=0.5)
        sink.counter("c", 3.0, ts=1.0, tid=2)
        sink.counter("c", 4.0, ts=2.0, tid=2)
        assert [e.kind for e in sink.events] == ["span", "instant",
                                                 "counter", "counter"]
        assert len(sink.spans()) == 1 and len(sink.instants()) == 1
        assert len(sink.counters("c")) == 2
        assert sink.counter_value("c", tid=2) == 4.0
        with pytest.raises(KeyError):
            sink.counter_value("c", tid=0)
        sink.clear()
        assert sink.events == []


class TestJsonlRoundTrip:
    def test_stream_and_read_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.span("op", ts=1.0, dur=2.0, tid=1, cat="F",
                  args={"microbatch": 3})
        sink.instant("send", ts=2.5, tid=0, cat="channel")
        sink.counter("bytes", 42.0, ts=3.0)
        sink.thread_name(1, "stage 1")
        sink.close()
        before = [json.loads(line) for line in path.read_text().splitlines()]
        events = read_jsonl(path)
        assert [e.kind for e in events] == ["span", "instant", "counter",
                                            "meta"]
        assert [e.to_dict() for e in events] == before

    def test_accepts_file_object(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.span("x", ts=0.0, dur=1.0)
        events = read_jsonl(buf.getvalue().splitlines())
        assert events[0].name == "x"

    def test_full_iteration_round_trips(self, tmp_path):
        schedule = _mepipe_schedule()
        result = simulate(schedule, UniformCost(schedule.problem))
        memory = MemorySink()
        path = tmp_path / "iter.jsonl"
        jsonl = JsonlSink(path)
        record_iteration(result, TeeSink(memory, jsonl))
        jsonl.close()
        assert read_jsonl(path) == memory.events


# ----------------------------------------------------------------------
# Chrome trace: golden compatibility with the legacy exporter
# ----------------------------------------------------------------------
def _legacy_chrome_trace(result, time_unit_us=1e6):
    """The exact pre-``repro.obs`` ``viz.trace.to_chrome_trace`` logic."""
    colors = {"F": "thread_state_running", "B": "thread_state_iowait",
              "W": "thread_state_runnable"}
    events = []
    for stage in range(result.problem.num_stages):
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": stage, "args": {"name": f"stage {stage}"}})
        for record in result.stage_records(stage):
            op = record.op
            events.append({
                "name": str(op),
                "cat": op.kind.value,
                "ph": "X",
                "pid": 0,
                "tid": stage,
                "ts": record.start * time_unit_us,
                "dur": max(record.duration * time_unit_us, 0.01),
                "cname": colors[op.kind.value],
                "args": {"microbatch": op.microbatch, "slice": op.slice_idx,
                         "chunk": op.chunk},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schedule": result.schedule_name,
            "bubble_ratio": round(result.bubble_ratio, 6),
            "peak_activation_units": round(result.peak_activation_units, 6),
        },
    }


class TestChromeGolden:
    def test_matches_legacy_output_on_e0_grid(self):
        from repro.experiments.e0 import METHOD_SETUPS

        for method, kwargs in METHOD_SETUPS:
            problem = build_problem(method, P, N, **kwargs)
            schedule = build_schedule(method, problem)
            result = simulate(schedule, UniformCost(problem, tw=1.0))
            assert sim_chrome_trace(result) == _legacy_chrome_trace(result), \
                method

    def test_deprecated_shim_warns_and_delegates(self):
        from repro.viz.trace import to_chrome_trace

        schedule = _mepipe_schedule()
        result = simulate(schedule, UniformCost(schedule.problem))
        with pytest.warns(DeprecationWarning, match="sim_chrome_trace"):
            trace = to_chrome_trace(result)
        assert trace == sim_chrome_trace(result)

    def test_write_shim_warns(self, tmp_path):
        from repro.viz.trace import write_chrome_trace

        schedule = _mepipe_schedule()
        result = simulate(schedule, UniformCost(schedule.problem))
        with pytest.warns(DeprecationWarning):
            path = write_chrome_trace(result, tmp_path / "t.json")
        assert json.loads(path.read_text()) == sim_chrome_trace(result)

    def test_chrome_trace_renders_all_kinds(self):
        events = [
            Event(kind="meta", name="process_name", pid=1,
                  args={"name": "sim"}),
            Event(kind="span", name="op", ts=1.0, dur=0.0, cat="F"),
            Event(kind="instant", name="send", ts=1.0, cat="channel"),
            Event(kind="counter", name="bytes", ts=2.0, value=7.0),
        ]
        trace = chrome_trace(events, colors={"F": "blue"})
        meta, span, instant, counter = trace["traceEvents"]
        assert meta["ph"] == "M"
        assert span["ph"] == "X" and span["dur"] == 0.01  # floored
        assert span["cname"] == "blue"
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert counter["ph"] == "C" and counter["args"] == {"value": 7.0}

    def test_chrome_trace_sink_writes_on_close(self, tmp_path):
        path = tmp_path / "trace.json"
        with ChromeTraceSink(path, other_data={"k": 1}) as sink:
            sink.span("op", ts=0.0, dur=1.0, cat="F")
        trace = json.loads(path.read_text())
        assert trace["otherData"] == {"k": 1}
        assert trace["traceEvents"][0]["cname"] == "thread_state_running"


# ----------------------------------------------------------------------
# Sim vs runtime: one bus, aligned traces, one metrics API
# ----------------------------------------------------------------------
class TestSubstrateAlignment:
    @pytest.fixture(scope="class")
    def both(self):
        schedule = _mepipe_schedule(p=P)
        sim_result = simulate(schedule, UniformCost(schedule.problem))
        run_result = _run_runtime(schedule)
        return schedule, sim_result, run_result

    def test_results_satisfy_protocol(self, both):
        _, sim_result, run_result = both
        assert isinstance(sim_result, PipelineResult)
        assert isinstance(run_result, PipelineResult)

    def test_same_ops_per_stage(self, both):
        _, sim_result, run_result = both
        for stage in range(P):
            sim_ops = sorted(str(r.op) for r in sim_result.stage_records(stage))
            run_ops = sorted(str(r.op) for r in run_result.stage_records(stage))
            assert sim_ops == run_ops

    def test_traces_align_row_for_row(self, both):
        _, sim_result, run_result = both
        sim_sink, run_sink = MemorySink(), MemorySink()
        record_iteration(sim_result, sim_sink)
        record_iteration(run_result, run_sink)

        def layout(sink):
            return {
                (e.tid, e.name, e.cat)
                for e in sink.events if e.kind in ("span", "instant")
            }

        assert layout(sim_sink) == layout(run_sink)

    def test_comm_volume_agrees(self, both):
        schedule, sim_result, run_result = both
        sim_comms = sim_result.comm_volume
        run_comms = run_result.comm_volume
        assert sim_comms.message_count == run_comms.message_count
        assert sim_comms.messages == run_comms.messages
        derived = schedule_comm_log(schedule.problem)
        assert derived.messages == run_comms.messages

    def test_comm_bytes_match_when_stamped(self, both):
        schedule, sim_result, run_result = both
        per_message = run_result.comms.bytes_total / run_result.comms.message_count
        sim_result.comm_bytes_per_message = per_message
        sim_result._comm_volume = None  # invalidate the lazy log
        assert sim_result.comm_volume.bytes_total == run_result.comms.bytes_total

    def test_metrics_are_uniform(self, both):
        _, sim_result, run_result = both
        sim_metrics = sim_result.metrics()
        run_metrics = run_result.metrics()
        assert isinstance(sim_metrics, IterationMetrics)
        assert (sim_metrics.source, sim_metrics.time_unit) == ("sim", "model")
        assert (run_metrics.source, run_metrics.time_unit) == ("runtime",
                                                              "seconds")
        assert sim_metrics.schedule_name == run_metrics.schedule_name
        assert sim_metrics.ops_executed == run_metrics.ops_executed
        assert sim_metrics.stage_op_counts == run_metrics.stage_op_counts
        assert sim_metrics.comm_messages == run_metrics.comm_messages
        assert {r.name for r in sim_metrics.span_table} == \
               {r.name for r in run_metrics.span_table}

    def test_metrics_to_dict_and_text(self, both):
        _, sim_result, _ = both
        metrics = sim_result.metrics()
        data = metrics.to_dict()
        assert data["peak_live_bytes"] == metrics.peak_live_bytes
        assert "span_table" not in data
        assert len(metrics.to_dict(spans=True)["span_table"]) == \
               metrics.ops_executed
        text = metrics.render_text()
        assert "bubble ratio" in text and "mepipe" in text

    def test_runtime_busy_and_bubble(self, both):
        _, _, run_result = both
        assert 0.0 < run_result.bubble_ratio < 1.0
        for stat in run_result.stage_stats:
            assert 0.0 < stat.busy_seconds <= run_result.wall_seconds


# ----------------------------------------------------------------------
# Instrumentation hooks, per substrate
# ----------------------------------------------------------------------
class TestSimulatorInstrumentation:
    def test_simulate_emits_spans_and_counters(self):
        schedule = _mepipe_schedule()
        sink = MemorySink()
        result = simulate(schedule, UniformCost(schedule.problem), sink=sink)
        assert len(sink.spans()) == schedule.op_count()
        assert sink.counter_value("busy_time", tid=0) == \
               result.stages[0].busy_time
        assert sink.counter_value("comm_messages") == \
               result.comm_volume.message_count
        # comm/overlap counters from record_sim_comm
        assert sink.counters("comm_time") and sink.counters("comm_overlap_time")

    def test_null_sink_emits_nothing(self):
        schedule = _mepipe_schedule()
        result = simulate(schedule, UniformCost(schedule.problem),
                          sink=NULL_SINK)
        assert result.makespan > 0

    def test_cluster_cost_stamps_byte_conversions(self):
        from repro.hardware import RTX4090_CLUSTER
        from repro.model import LLAMA_13B
        from repro.parallel import ParallelConfig
        from repro.sim import ClusterCost

        problem = build_problem("mepipe", 8, 8, num_slices=2, wgrad_gemms=3)
        cost = ClusterCost(
            spec=LLAMA_13B, cluster=RTX4090_CLUSTER, problem=problem,
            config=ParallelConfig(dp=8, pp=8, spp=2),
        )
        result = simulate(build_schedule("mepipe", problem), cost)
        assert result.activation_bytes_per_unit > 0
        assert result.comm_bytes_per_message == cost.boundary_message_bytes()
        assert result.peak_live_bytes > 0
        assert result.comm_volume.bytes_total > 0


class TestRuntimeInstrumentation:
    def test_run_emits_iteration(self):
        schedule = _mepipe_schedule()
        sink = MemorySink()
        result = _run_runtime(schedule, sink=sink)
        assert len(sink.spans()) == schedule.op_count()
        assert sink.counter_value("peak_live_bytes", tid=0) == \
               result.stage_stats[0].peak_live_bytes


class TestProfilerInstrumentation:
    def test_profile_spans_feed_measurements(self):
        from repro.profiler import Profiler

        problem = build_problem("mepipe", 2, N, num_slices=2, wgrad_gemms=3)
        sink = MemorySink()
        profiler = Profiler(spec=SPEC, problem=problem, warmup=1, repeats=2)
        cost = profiler.profile(sink=sink)
        warm = [e for e in sink.spans() if e.arg("warmup")]
        timed = [e for e in sink.spans() if not e.arg("warmup")]
        per_round = len(sink.spans()) // (profiler.warmup + profiler.repeats)
        assert len(warm) == per_round and len(timed) == 2 * per_round
        for profile in cost.measurements.values():
            assert profile.samples == profiler.repeats
        # aggregate equals the span stream it came from
        key = next(iter(cost.measurements))
        total = sum(
            e.dur for e in timed
            if (e.cat, e.arg("slice"), e.arg("chunk")) ==
               (key[0].value, key[1], key[2])
        )
        assert cost.measurements[key].total_seconds == pytest.approx(total)

    def test_profile_without_sink_unchanged(self):
        from repro.profiler import Profiler

        problem = build_problem("dapple", 2, N)
        cost = Profiler(spec=SPEC, problem=problem).profile()
        assert all(p.samples == 3 for p in cost.measurements.values())


class TestPlannerInstrumentation:
    def test_sweep_emits_eval_spans_and_counters(self, tmp_path):
        from repro.hardware import RTX4090_CLUSTER
        from repro.model import LLAMA_13B
        from repro.parallel import ParallelConfig
        from repro.planner.parallel import EvalTask, SweepCache, evaluate_tasks

        task = EvalTask("mepipe", LLAMA_13B, RTX4090_CLUSTER,
                        ParallelConfig(dp=8, pp=8, spp=2), 64)
        cache = SweepCache(tmp_path)
        sink = MemorySink()
        evaluate_tasks([task], cache=cache, sink=sink)
        (span,) = sink.spans()
        assert span.cat == "eval" and span.arg("ok") is True
        assert sink.counter_value("evaluated") == 1.0
        assert sink.counter_value("cache_hits") == 0.0

        sink = MemorySink()
        outcomes = evaluate_tasks([task], cache=cache, sink=sink)
        assert outcomes[0].ok
        assert not sink.spans()
        (hit,) = sink.instants()
        assert hit.cat == "cache"
        assert sink.counter_value("cache_hits") == 1.0

    def test_search_emits_skip_instants(self):
        from repro.hardware import RTX4090_CLUSTER
        from repro.model import LLAMA_34B
        from repro.planner.search import search_method

        sink = MemorySink()
        # GBS far below the device count: every candidate prunes or
        # rejects, so the sweep is fast and skip-heavy.
        result = search_method("dapple", LLAMA_34B, RTX4090_CLUSTER, 8,
                               sink=sink)
        skips = [e for e in sink.instants() if e.cat == "skip"]
        assert sink.counter_value("skipped") == len(result.skipped)
        assert len(skips) <= len(result.skipped)


class TestExperimentInstrumentation:
    def test_e0_records_one_process_per_method(self):
        from repro.experiments import e0

        sink = MemorySink()
        report = e0.run(sink=sink)
        assert all(row[-1] == "PASS" for row in report.rows)
        process_names = {
            e.arg("name")
            for e in sink.events
            if e.kind == "meta" and e.name == "process_name"
        }
        assert process_names == {m for m, _ in e0.METHOD_SETUPS}
        pids = {e.pid for e in sink.spans()}
        assert pids == set(range(len(e0.METHOD_SETUPS)))
