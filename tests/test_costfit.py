"""Tests for cost-model fitting from profiled measurements."""

import pytest

from repro.hardware.efficiency import EfficiencyModel
from repro.model import LLAMA_7B, LLAMA_13B
from repro.planner import (
    fit_efficiency_curve,
    observations_from_slices,
    synthetic_observations,
)


class TestFitRecovery:
    def test_exact_recovery_without_noise(self):
        truth = EfficiencyModel(max_gemm_efficiency=0.8,
                                max_attention_efficiency=0.8,
                                half_saturation_tokens=32.0)
        obs = synthetic_observations(LLAMA_13B, truth, 165e12)
        fit = fit_efficiency_curve(obs)
        assert fit.half_saturation_tokens == 32.0
        assert fit.peak_flops == pytest.approx(0.8 * 165e12, rel=1e-6)
        assert fit.residual < 1e-9

    def test_robust_to_noise(self):
        truth = EfficiencyModel(max_gemm_efficiency=0.88,
                                max_attention_efficiency=0.88,
                                half_saturation_tokens=64.0)
        obs = synthetic_observations(LLAMA_13B, truth, 165e12,
                                     noise=0.03, seed=4)
        fit = fit_efficiency_curve(obs)
        assert fit.half_saturation_tokens in (32.0, 64.0, 128.0)
        assert fit.peak_flops == pytest.approx(0.88 * 165e12, rel=0.05)

    def test_prediction_interpolates(self):
        truth = EfficiencyModel(max_gemm_efficiency=0.8,
                                max_attention_efficiency=0.8,
                                half_saturation_tokens=64.0)
        obs = synthetic_observations(LLAMA_7B, truth, 165e12,
                                     slice_counts=(1, 4, 8))
        fit = fit_efficiency_curve(obs)
        # Predict an unseen slice size (s=2 -> 2048 tokens).
        from repro.model.flops import layer_slice_flops
        flops = layer_slice_flops(LLAMA_7B, 2048, 0).forward
        predicted = fit.predict_seconds(flops, 2048)
        actual = flops / (165e12 * truth.gemm(2048))
        assert predicted == pytest.approx(actual, rel=0.02)

    def test_as_efficiency_model_round_trip(self):
        truth = EfficiencyModel(max_gemm_efficiency=0.75,
                                max_attention_efficiency=0.75,
                                half_saturation_tokens=64.0)
        obs = synthetic_observations(LLAMA_13B, truth, 200e12)
        model = fit_efficiency_curve(obs).as_efficiency_model(200e12)
        assert model.max_gemm_efficiency == pytest.approx(0.75, rel=0.01)


class TestValidation:
    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            fit_efficiency_curve([(1e12, 1024, 0.01)])

    def test_needs_two_token_counts(self):
        obs = [(1e12, 1024, 0.01), (2e12, 1024, 0.02)]
        with pytest.raises(ValueError, match="distinct"):
            fit_efficiency_curve(obs)

    def test_observations_from_slices(self):
        obs = observations_from_slices(
            LLAMA_7B, {(1024, 0): 0.01, (1024, 1024): 0.012})
        assert len(obs) == 2
        # The later slice has more attention FLOPs.
        assert obs[1][0] > obs[0][0] or obs[0][0] > obs[1][0]
        flops = sorted(o[0] for o in obs)
        assert flops[1] > flops[0]
