"""The batched (multi-config) analytic evaluator, bit for bit.

The central claim of :mod:`repro.analysis.evaluate.batch` — one stacked
``(n_configs, n_ops)`` sweep of a topology class equals the scalar
:func:`evaluate_schedule` member for member, bit-identically — is
checked here over the full acceptance grid under distinct per-member
cost tables, plus the structural-agreement guard and the grid-tier
planner integration (``evaluator="grid"`` returns exactly what
``"tiered"`` and ``"sim"`` return).
"""

import random

import numpy as np
import pytest

from repro.analysis.evaluate import (
    evaluate_schedule,
    evaluate_schedule_batch,
)
from repro.hardware.cluster import RTX4090_CLUSTER
from repro.model.spec import LLAMA_13B
from repro.planner.evaluate import evaluate_config_batch
from repro.planner.parallel import EvalTask, evaluate_tasks, evaluate_tasks_batched
from repro.planner.search import search_method
from repro.schedules import gencache
from repro.schedules.graph import compiled_graph
from repro.schedules.methods import build_problem, build_schedule
from repro.sim.cost import UniformCost

from tests.test_verify import golden_grid

GBS = 64


def member_costs(problem, s, k=3):
    """``k`` distinct cost models over one problem (one topology class
    for cost-independent builders; for greedy builders the generated
    structures may differ and the batch entry points group on them)."""
    return [
        UniformCost(
            problem,
            tw=0.5 + 0.25 * j,
            imbalance=tuple(1.0 + 0.1 * (i + j) for i in range(s)),
        )
        for j in range(k)
    ]


def assert_identical(batched, scalar):
    """Full bit-identity including the (compare=False) dense times."""
    assert batched == scalar
    assert batched.certificate == scalar.certificate
    assert np.array_equal(batched.times.start, scalar.times.start)
    assert np.array_equal(batched.times.end, scalar.times.end)
    assert batched.activation_bytes_per_unit == scalar.activation_bytes_per_unit
    assert batched.comm_bytes_per_message == scalar.comm_bytes_per_message


# ----------------------------------------------------------------------
# Golden bit-identity over the acceptance grid
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "method,p,n,s,v,g", list(golden_grid()), ids=lambda val: str(val)
)
def test_batch_is_bit_identical_on_golden_grid(method, p, n, s, v, g):
    problem = build_problem(
        method, p, n, num_slices=s, virtual_size=v, wgrad_gemms=g
    )
    costs = member_costs(problem, s)
    # One schedule per cost: cost-aware builders may shape the schedule
    # from the durations, so each member gets its own build.  The batch
    # call requires one topology class; structurally divergent members
    # are exercised by the planner-level grouping test below.
    schedules = [build_schedule(method, problem, cost=c) for c in costs]
    key = compiled_graph(schedules[0]).structure_key()
    same = [
        (sch, c)
        for sch, c in zip(schedules, costs)
        if compiled_graph(sch).structure_key() == key
    ]
    overheads = [0.125 * j for j in range(len(same))]
    batch = evaluate_schedule_batch(
        [sch for sch, _ in same], [c for _, c in same], overheads
    )
    for (sch, c), overhead, batched in zip(same, overheads, batch):
        assert_identical(batched, evaluate_schedule(sch, c, overhead))


def test_batch_of_one_equals_scalar_exactly():
    rng = random.Random(7)
    for method, s, v, g in [
        ("mepipe", 4, 2, 2),
        ("zbv", 1, 2, 2),
        ("dapple", 1, 1, 1),
    ]:
        problem = build_problem(
            method, 4, 8, num_slices=s, virtual_size=v, wgrad_gemms=g
        )
        for _ in range(3):
            cost = UniformCost(
                problem,
                tw=rng.uniform(0.1, 2.0),
                imbalance=tuple(rng.uniform(0.8, 1.4) for _ in range(s)),
            )
            schedule = build_schedule(method, problem, cost=cost)
            overhead = rng.uniform(0.0, 5.0)
            (batched,) = evaluate_schedule_batch(
                [schedule], [cost], [overhead]
            )
            assert_identical(
                batched, evaluate_schedule(schedule, cost, overhead)
            )


def test_structural_mismatch_raises():
    a = build_problem("mepipe", 4, 8, num_slices=2, wgrad_gemms=2)
    b = build_problem("mepipe", 4, 16, num_slices=2, wgrad_gemms=2)
    ca, cb = UniformCost(a), UniformCost(b)
    sa, sb = build_schedule("mepipe", a, ca), build_schedule("mepipe", b, cb)
    with pytest.raises(ValueError, match="one topology class"):
        evaluate_schedule_batch([sa, sb], [ca, cb], [0.0, 0.0])


def test_mismatched_batch_lengths_raise():
    problem = build_problem("dapple", 2, 4)
    cost = UniformCost(problem)
    schedule = build_schedule("dapple", problem, cost=cost)
    with pytest.raises(ValueError, match="mismatched batch"):
        evaluate_schedule_batch([schedule], [cost], [0.0, 1.0])


def test_empty_batch_is_empty():
    assert evaluate_schedule_batch([], [], []) == []


# ----------------------------------------------------------------------
# Planner integration: grouping, batching, and the grid evaluator
# ----------------------------------------------------------------------
def test_evaluate_config_batch_matches_scalar_sweep():
    from repro.parallel.strategies import ParallelConfig

    tasks = [
        EvalTask(
            "dapple",
            LLAMA_13B,
            RTX4090_CLUSTER,
            ParallelConfig(dp=8, pp=8, recompute=rc),
            GBS,
            tier="analytic",
        )
        for rc in (False, True)
    ] + [
        EvalTask(
            "mepipe",
            LLAMA_13B,
            RTX4090_CLUSTER,
            ParallelConfig(dp=8, pp=8, spp=spp),
            GBS,
            tier="analytic",
        )
        for spp in (1, 2)
    ]
    report = evaluate_config_batch(tasks)
    assert len(report.results) == len(tasks)
    scalar = evaluate_tasks(list(tasks))
    batched = evaluate_tasks_batched(list(tasks))
    assert batched == scalar
    # The dapple recompute pair shares one problem and a cost-independent
    # builder — a genuine topology class of size 2.
    assert any(size >= 2 for size in report.class_sizes)


def test_grid_evaluator_matches_tiered_and_sim():
    results = {
        evaluator: search_method(
            "mepipe",
            LLAMA_13B,
            RTX4090_CLUSTER,
            GBS,
            max_spp=4,
            evaluator=evaluator,
        )
        for evaluator in ("sim", "tiered", "grid")
    }
    grid, tiered, sim = results["grid"], results["tiered"], results["sim"]
    assert grid.best == tiered.best
    assert grid.evaluated == tiered.evaluated
    assert [(s.config, s.reason) for s in grid.skipped] == [
        (s.config, s.reason) for s in tiered.skipped
    ]
    # vs "sim" the numbers and the winner agree (tier tags differ).
    assert grid.best.config == sim.best.config
    assert grid.best.iteration_time_s == sim.best.iteration_time_s


def test_structure_store_shares_plans_across_sweeps():
    gencache.clear()
    # dapple's builder is cost-independent, so two builds under
    # different cost tables share one structure; the second
    # evaluation's topological plan comes from the store.  (mepipe's
    # greedy builder is cost-aware — different durations can reshape
    # the schedule — so it is exactly the case the store must NOT
    # alias, which the structural key guarantees.)
    problem = build_problem("dapple", 4, 8)
    cost_a = UniformCost(problem, tw=0.5)
    cost_b = UniformCost(problem, tw=1.5)
    evaluate_schedule(build_schedule("dapple", problem, cost=cost_a), cost_a)
    before = gencache.structure_stats()
    evaluate_schedule(build_schedule("dapple", problem, cost=cost_b), cost_b)
    after = gencache.structure_stats()
    assert after["hits"] >= before["hits"] + 1
