"""Tests for GPipe, TeraPipe, DAPPLE, and interleaved VPP generators."""

import pytest

from repro.schedules import (
    PipelineProblem,
    ScheduleError,
    analyze,
    build_problem,
    build_schedule,
    dapple_schedule,
    gpipe_schedule,
    terapipe_schedule,
    validate_schedule,
    vpp_schedule,
)
from repro.sim import UniformCost, simulate


def run(method, p, n, s=1, v=1, **cost_kwargs):
    problem = build_problem(method, p, n, num_slices=s, virtual_size=v)
    schedule = build_schedule(method, problem)
    validate_schedule(schedule)
    return simulate(schedule, UniformCost(problem, **cost_kwargs))


class TestGPipe:
    @pytest.mark.parametrize("p,n", [(2, 2), (4, 8), (4, 3), (8, 16)])
    def test_bubble_matches_formula(self, p, n):
        result = run("gpipe", p, n)
        expected = analyze("gpipe", p, n)
        assert result.bubble_ratio == pytest.approx(expected.bubble_ratio, abs=1e-9)

    def test_memory_is_all_microbatches(self):
        result = run("gpipe", 4, 8)
        assert result.peak_activation_units == pytest.approx(8 / 4)

    def test_rejects_slices(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=2, num_slices=2)
        with pytest.raises(ScheduleError):
            gpipe_schedule(pr)


class TestTeraPipe:
    @pytest.mark.parametrize("p,n,s", [(4, 8, 2), (4, 8, 8), (8, 4, 4), (2, 1, 4)])
    def test_bubble_matches_formula(self, p, n, s):
        result = run("terapipe", p, n, s=s)
        expected = analyze("terapipe", p, n, s=s)
        assert result.bubble_ratio == pytest.approx(expected.bubble_ratio, abs=1e-9)

    def test_memory_unchanged_by_slicing(self):
        """Section 2.1: TeraPipe preserves all samples' activations."""
        for s in (1, 2, 4, 8):
            result = run("terapipe", 4, 8, s=s)
            assert result.peak_activation_units == pytest.approx(2.0)

    def test_slices_shrink_bubble(self):
        bubbles = [run("terapipe", 4, 4, s=s).bubble_ratio for s in (1, 2, 4, 8)]
        assert bubbles == sorted(bubbles, reverse=True)

    def test_rejects_virtual(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=2, num_slices=2,
                             virtual_size=2)
        with pytest.raises(ScheduleError):
            terapipe_schedule(pr)


class TestDAPPLE:
    @pytest.mark.parametrize("p,n", [(2, 4), (4, 8), (4, 4), (8, 32), (4, 2)])
    def test_bubble_matches_formula(self, p, n):
        result = run("dapple", p, n)
        expected = analyze("dapple", p, n)
        assert result.bubble_ratio == pytest.approx(expected.bubble_ratio, abs=1e-9)

    @pytest.mark.parametrize("p,n", [(4, 8), (8, 8), (4, 2)])
    def test_memory_matches_table3(self, p, n):
        result = run("dapple", p, n)
        expected = analyze("dapple", p, n)
        assert result.peak_activation_units == pytest.approx(expected.memory_units)

    def test_first_stage_holds_p_microbatches(self):
        """Figure 2 discussion: the first stage saves p forward passes."""
        result = run("dapple", 4, 8)
        assert result.stages[0].peak_activation_units == pytest.approx(1.0)
        assert result.stages[3].peak_activation_units == pytest.approx(1 / 4)

    def test_memory_staircase(self):
        result = run("dapple", 4, 8)
        peaks = [m.peak_activation_units for m in result.stages]
        assert peaks == sorted(peaks, reverse=True)

    def test_1f1b_structure_on_last_stage(self):
        schedule = build_schedule("dapple", build_problem("dapple", 4, 4))
        kinds = [op.kind.value for op in schedule.stage_ops(3)]
        assert kinds == ["F", "B"] * 4


class TestVPP:
    @pytest.mark.parametrize("p,n,v", [(2, 4, 2), (4, 8, 2), (4, 8, 3), (4, 16, 2)])
    def test_bubble_matches_formula(self, p, n, v):
        result = run("vpp", p, n, v=v)
        expected = analyze("vpp", p, n, v=v)
        assert result.bubble_ratio == pytest.approx(expected.bubble_ratio, abs=1e-9)

    def test_memory_matches_table3(self):
        result = run("vpp", 4, 8, v=2)
        expected = analyze("vpp", 4, 8, v=2)
        assert result.peak_activation_units == pytest.approx(expected.memory_units)

    def test_vpp_more_memory_than_dapple(self):
        """Section 2.1: VPP fails to reduce activation memory."""
        vpp = run("vpp", 4, 8, v=2)
        dapple = run("dapple", 4, 8)
        assert vpp.peak_activation_units > dapple.peak_activation_units

    def test_vpp_less_bubble_than_dapple(self):
        vpp = run("vpp", 4, 8, v=2)
        dapple = run("dapple", 4, 8)
        assert vpp.bubble_ratio < dapple.bubble_ratio

    def test_requires_divisible_microbatches(self):
        pr = PipelineProblem(num_stages=4, num_microbatches=6, virtual_size=2)
        with pytest.raises(ScheduleError, match="n % p"):
            vpp_schedule(pr)

    def test_requires_v_at_least_2(self):
        pr = PipelineProblem(num_stages=4, num_microbatches=8)
        with pytest.raises(ScheduleError):
            vpp_schedule(pr)
