"""Tests for the Section 6 profiler."""

import pytest

from repro.model import tiny_spec
from repro.profiler import ProfiledCost, Profiler, profile_and_schedule
from repro.schedules import (
    OpId,
    OpKind,
    PipelineProblem,
    validate_schedule,
)
from repro.sim.executor import simulate

# Long-enough slices that attention imbalance dominates timer noise.
SPEC = tiny_spec(hidden_size=32, num_layers=6, num_heads=4,
                 ffn_hidden_size=64, vocab_size=31, seq_length=512)


@pytest.fixture(scope="module")
def profiled():
    problem = PipelineProblem(num_stages=4, num_microbatches=4, num_slices=4,
                              split_backward=True, wgrad_gemms=2)
    cost = Profiler(spec=SPEC, problem=problem, batch_size=1,
                    warmup=1, repeats=3).profile()
    return problem, cost


class TestProfiler:
    def test_every_op_class_measured(self, profiled):
        problem, cost = profiled
        for kind in (OpKind.F, OpKind.B, OpKind.W):
            for sl in range(problem.num_slices):
                for c in range(problem.num_chunks):
                    assert cost.duration(OpId(kind, 0, sl, c)) > 0.0

    def test_measured_imbalance_matches_causality(self, profiled):
        """Later slices attend to more keys and must measure slower."""
        problem, cost = profiled
        chunk = 1  # a pure transformer chunk
        first = cost.duration(OpId(OpKind.F, 0, 0, chunk))
        last = cost.duration(OpId(OpKind.F, 0, problem.num_slices - 1, chunk))
        assert last > first
        assert cost.imbalance_ratio(chunk) < 1.0

    def test_wgrad_split_into_fragments(self, profiled):
        problem, cost = profiled
        whole = cost.measurements[(OpKind.W, 1, 1)].mean_seconds
        fragment = cost.duration(OpId(OpKind.W, 0, 1, 1, gemm=0))
        assert fragment == pytest.approx(whole / problem.wgrad_gemms)

    def test_repeats_accumulate_samples(self, profiled):
        _problem, cost = profiled
        assert cost.measurements[(OpKind.F, 0, 0)].samples == 3

    def test_unknown_op_raises(self, profiled):
        problem, cost = profiled
        with pytest.raises(KeyError):
            cost.duration(OpId(OpKind.F, 0, 0, 99))


class TestProfileAndSchedule:
    def test_end_to_end_mepipe(self):
        problem = PipelineProblem(num_stages=2, num_microbatches=3,
                                  num_slices=2, split_backward=True,
                                  wgrad_gemms=2)
        cost, schedule = profile_and_schedule(SPEC, problem, batch_size=1)
        validate_schedule(schedule)
        result = simulate(schedule, cost)
        assert result.makespan > 0
        assert 0.0 <= result.bubble_ratio < 1.0

    def test_end_to_end_svpp(self):
        problem = PipelineProblem(num_stages=2, num_microbatches=2,
                                  num_slices=2)
        cost, schedule = profile_and_schedule(SPEC, problem, batch_size=1)
        validate_schedule(schedule)
        assert schedule.name.startswith("svpp")
