"""Kitchen-sink integration tests: the full MEPipe system end to end.

These exercise the complete flow a user of the library would run:
profile -> schedule -> execute numerically -> train with mixed-precision
guards and fault tolerance -> export artifacts.
"""

import json

import numpy as np
import pytest

from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import Adam, build_model, sequential_step
from repro.nn.precision import GradNormClipper, LossScaler, shrink_embedding_gradients
from repro.pipeline import PipelineRuntime
from repro.profiler import Profiler
from repro.reliability import FaultInjector, TrainingDriver
from repro.schedules import (
    PipelineProblem,
    build_problem,
    build_schedule,
    mepipe_schedule,
    validate_schedule,
)
from repro.sim.executor import simulate
from repro.viz import write_chrome_trace

SPEC = tiny_spec(hidden_size=32, num_layers=6, num_heads=4,
                 ffn_hidden_size=64, vocab_size=37, seq_length=32)


class TestProfiledScheduleNumerics:
    def test_profiler_driven_schedule_trains_exactly(self):
        """Profile real op times, schedule with them, execute the
        schedule numerically, and match sequential gradients."""
        problem = PipelineProblem(num_stages=4, num_microbatches=4,
                                  num_slices=4, split_backward=True,
                                  wgrad_gemms=2)
        cost = Profiler(spec=SPEC, problem=problem, batch_size=2,
                        warmup=0, repeats=1).profile()
        schedule = mepipe_schedule(problem, cost=cost)
        validate_schedule(schedule)

        tokens, targets = token_batches(SPEC.vocab_size, 4, 2,
                                        SPEC.seq_length, seed=8)
        reference = build_model(SPEC, seed=3)
        ref_loss = sequential_step(reference, tokens, targets)

        model = build_model(SPEC, seed=3)
        result = PipelineRuntime(model, tokens, targets).run(schedule)
        assert result.loss == pytest.approx(ref_loss, abs=1e-12)
        for key, grad in model.named_grads().items():
            assert np.allclose(grad, reference.named_grads()[key], atol=1e-12)


class TestCommAccounting:
    def test_message_counts_match_schedule_structure(self):
        """Every cross-stage F/B edge appears as exactly one message."""
        problem = build_problem("svpp", 4, 3, num_slices=2)
        schedule = build_schedule("svpp", problem)
        tokens, targets = token_batches(SPEC.vocab_size, 3, 2,
                                        SPEC.seq_length, seed=1)
        model = build_model(SPEC, seed=1)
        result = PipelineRuntime(model, tokens, targets).run(schedule)
        # n * s micro-slices each cross p-1 forward and p-1 backward
        # boundaries (v=1: chunk boundaries == stage boundaries).
        expected = 3 * 2 * (4 - 1) * 2
        assert result.comms.message_count == expected

    def test_spp_shrinks_bytes_not_count_per_sample(self):
        tokens, targets = token_batches(SPEC.vocab_size, 2, 2,
                                        SPEC.seq_length, seed=1)

        def run(s):
            problem = build_problem("terapipe" if s > 1 else "dapple",
                                    2, 2, num_slices=s)
            schedule = build_schedule("terapipe" if s > 1 else "dapple",
                                      problem)
            model = build_model(SPEC, seed=1)
            return PipelineRuntime(model, tokens, targets).run(schedule)

        whole = run(1)
        sliced = run(4)
        # Same total bytes, four times the messages.
        assert sliced.comms.bytes_total == whole.comms.bytes_total
        assert sliced.comms.message_count == 4 * whole.comms.message_count


class TestFullTrainingStack:
    def test_mixed_precision_fault_tolerant_pipeline(self):
        """MEPipe schedule + loss scaling + grad clipping + embedding
        shrink + fault injection, in one training run that converges."""
        tokens, targets = token_batches(SPEC.vocab_size, 4, 2,
                                        SPEC.seq_length, seed=6)
        problem = build_problem("mepipe", 4, 4, num_slices=2, wgrad_gemms=2)
        schedule = build_schedule("mepipe", problem)
        model = build_model(SPEC, seed=7)
        runtime = PipelineRuntime(model, tokens, targets)
        scaler = LossScaler(scale=8.0)
        clipper = GradNormClipper(max_norm=5.0)

        def step_fn(m):
            loss = runtime.run(schedule).loss
            grads = m.named_grads()
            assert scaler.unscale_and_check(grads) or True
            shrink_embedding_gradients(m, alpha=0.5)
            clipper.clip(grads)
            return loss

        driver = TrainingDriver(model, Adam(model, lr=3e-3),
                                checkpoint_interval=2,
                                injector=FaultInjector(fail_at_steps={3}))
        losses = driver.run(step_fn, steps=8)
        assert driver.recoveries == 1
        assert len(losses) == 8
        assert losses[-1] < losses[0]

    def test_artifact_export(self, tmp_path):
        """Simulate, export a Chrome trace, and read it back."""
        problem = build_problem("mepipe", 4, 4, num_slices=2, wgrad_gemms=2)
        schedule = build_schedule("mepipe", problem)
        from repro.sim.cost import UniformCost

        result = simulate(schedule, UniformCost(problem, tw=0.5))
        path = write_chrome_trace(result, tmp_path / "mepipe.json")
        data = json.loads(path.read_text())
        ops = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(ops) == len(problem.all_ops())
