"""Tests of the schedule static-analysis subsystem.

Covers the diagnostics framework, every rule in the catalogue with a
hand-seeded defect, the deadlock/channel witnesses, the closed-form
cross-check, the legacy ``validate_schedule`` wrapper, the verified
cache, the CLI, and the golden sweep: every shipped schedule verifies
error-clean across the acceptance grid.
"""

import json

import pytest

from repro.schedules import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
    StageProgram,
    build_problem,
    build_schedule,
    dapple_schedule,
    validate_schedule,
)
from repro.schedules.verify import (
    ALL_RULES,
    RULES,
    SAFETY_RULES,
    Finding,
    Report,
    Severity,
    assert_clean,
    ensure_verified,
    verify_schedule,
)

F, B, W = OpKind.F, OpKind.B, OpKind.W


def clone(schedule: Schedule) -> Schedule:
    """Deep-enough copy for mutation: fresh program lists, no cache."""
    return Schedule(
        problem=schedule.problem,
        programs=[StageProgram(pr.stage, list(pr.ops)) for pr in schedule.programs],
        name=schedule.name,
    )


def small_dapple(p: int = 2, n: int = 4) -> Schedule:
    return dapple_schedule(PipelineProblem(num_stages=p, num_microbatches=n))


# ---------------------------------------------------------------------------
# Diagnostics framework
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_catalogue_covers_all_rules(self):
        # The catalogue is shared with the model-analysis tier
        # (repro.analysis registers its SH/GC/HZ rules into RULES), so
        # the verifier's rules are a proper, disjoint subset.
        from repro.analysis import MODEL_RULES

        assert set(ALL_RULES) <= set(RULES)
        assert set(MODEL_RULES) <= set(RULES)
        assert set(ALL_RULES).isdisjoint(MODEL_RULES)
        assert set(SAFETY_RULES) < set(ALL_RULES)

    def test_finding_defaults_severity_from_catalogue(self):
        assert Finding("DL001", "boom").severity is Severity.ERROR
        assert Finding("CH001", "swap").severity is Severity.WARNING

    def test_finding_severity_override(self):
        f = Finding("CH001", "swap", severity=Severity.ERROR)
        assert f.severity is Severity.ERROR

    def test_finding_render_includes_location_and_witness(self):
        op = OpId(F, 0, 0, 0)
        f = Finding("ST001", "wrong home", stage=1, op=op, witness=("a", "b"))
        text = f.render()
        assert "ST001" in text and "stage 1" in text
        assert str(op) in text
        assert "    a" in text and "    b" in text

    def test_report_verdicts(self):
        rep = Report(schedule_name="x")
        assert rep.ok and "clean" in rep.render_text()
        rep.findings.append(Finding("CH001", "swap"))
        assert rep.ok and "1 warning(s)" in rep.render_text()
        rep.findings.append(Finding("DL001", "stuck"))
        assert not rep.ok
        assert "1 error(s), 1 warning(s)" in rep.render_text()

    def test_report_json_round_trip(self):
        rep = verify_schedule(small_dapple(), method="dapple")
        data = json.loads(rep.render_json())
        assert data["ok"] is True
        assert data["schedule"] == rep.schedule_name
        assert list(data["checked_rules"]) == list(ALL_RULES)

    def test_errors_sort_before_warnings(self):
        rep = Report(schedule_name="x")
        rep.findings.append(Finding("CH001", "swap"))
        rep.findings.append(Finding("DL001", "stuck"))
        text = rep.render_text()
        assert text.index("DL001") < text.index("CH001")


# ---------------------------------------------------------------------------
# Structure rules (ST001-ST005)
# ---------------------------------------------------------------------------


class TestStructure:
    def test_clean_schedule_has_no_findings(self):
        rep = verify_schedule(small_dapple(), method="dapple")
        assert rep.ok and not rep.findings

    def test_misplaced_op_st001(self):
        sched = clone(small_dapple())
        op = sched.programs[1].ops.pop(0)
        sched.programs[0].ops.append(op)
        rep = verify_schedule(sched)
        assert "ST001" in rep.rule_ids()
        (f,) = rep.by_rule("ST001")
        assert f.op == op and f.stage == 0
        assert "belongs to stage 1" in f.message

    def test_missing_op_st002(self):
        sched = clone(small_dapple())
        dropped = sched.programs[1].ops.pop()
        rep = verify_schedule(sched)
        assert "ST002" in rep.rule_ids()
        assert any(f.op == dropped for f in rep.by_rule("ST002"))

    def test_duplicate_op_st003(self):
        sched = clone(small_dapple())
        sched.programs[0].ops.append(sched.programs[0].ops[0])
        rep = verify_schedule(sched)
        assert "ST003" in rep.rule_ids()

    def test_foreign_op_st004(self):
        sched = clone(small_dapple())
        foreign = OpId(F, 99, 0, 0)
        sched.programs[0].ops.append(foreign)
        rep = verify_schedule(sched)
        assert any(f.op == foreign for f in rep.by_rule("ST004"))

    def test_malformed_programs_st005(self):
        sched = clone(small_dapple())
        del sched.programs[1]
        rep = verify_schedule(sched)
        assert rep.rule_ids() == {"ST005"}


# ---------------------------------------------------------------------------
# Deadlock detection and the minimal-cycle witness (DL001)
# ---------------------------------------------------------------------------


def swap_dependent_pair(sched: Schedule) -> tuple[OpId, OpId]:
    """Swap some same-stage (dep, op) pair in place; returns the pair."""
    problem = sched.problem
    for program in sched.programs:
        pos = {op: i for i, op in enumerate(program.ops)}
        for j, op in enumerate(program.ops):
            for dep in problem.deps(op):
                i = pos.get(dep)
                if i is not None and i < j:
                    program.ops[i], program.ops[j] = op, dep
                    return dep, op
    raise AssertionError("no same-stage dependent pair found")


class TestDeadlock:
    def test_swapped_dependents_deadlock_dl001(self):
        sched = clone(small_dapple())
        dep, op = swap_dependent_pair(sched)
        rep = verify_schedule(sched, rules=SAFETY_RULES)
        (f,) = rep.by_rule("DL001")
        text = f.render()
        assert "minimal blocking cycle" in text
        assert str(dep) in text and str(op) in text

    def test_witness_reports_per_stage_blocked_heads(self):
        sched = clone(small_dapple())
        swap_dependent_pair(sched)
        (f,) = verify_schedule(sched, rules=("DL001",)).by_rule("DL001")
        heads = [line for line in f.witness if "blocked at" in line]
        assert heads, f.witness

    def test_cycle_edges_are_labelled(self):
        sched = clone(small_dapple())
        swap_dependent_pair(sched)
        (f,) = verify_schedule(sched, rules=("DL001",)).by_rule("DL001")
        cycle = [line for line in f.witness if "->" in line]
        assert len(cycle) >= 2
        assert any("program order" in line for line in cycle)

    def test_cross_stage_order_inversion_deadlocks(self):
        # Stage 1 waits for F1 first while stage 0 sends F0 first, and
        # stage 0's B0 needs stage 1's B0 which sits behind the wait.
        problem = PipelineProblem(num_stages=2, num_microbatches=2)
        sched = clone(dapple_schedule(problem))
        ops = sched.programs[1].ops
        i0, i1 = ops.index(OpId(F, 0, 0, 1)), ops.index(OpId(B, 0, 0, 1))
        ops[i0], ops[i1] = ops[i1], ops[i0]
        rep = verify_schedule(sched, rules=SAFETY_RULES)
        assert "DL001" in rep.rule_ids()


# ---------------------------------------------------------------------------
# Channel order (CH001-CH003)
# ---------------------------------------------------------------------------


class TestChannels:
    def test_receive_reorder_warns_ch001(self):
        # B0 and B1 arrive at stage 0 from stage 1; different
        # micro-batches are independent, so receiving B1 before B0
        # cannot deadlock — it only inverts the channel order.
        sched = clone(small_dapple(p=2, n=4))
        ops = sched.programs[0].ops
        i0, i1 = ops.index(OpId(B, 0, 0, 0)), ops.index(OpId(B, 1, 0, 0))
        ops[i0], ops[i1] = ops[i1], ops[i0]
        rep = verify_schedule(sched, method="dapple")
        assert rep.ok  # benign under tagged transports -> warning only
        (f,) = rep.by_rule("CH001")
        assert f.severity is Severity.WARNING
        assert any("send order" in line for line in f.witness)
        assert any("recv order" in line for line in f.witness)

    def test_dropped_producer_ch002(self):
        sched = clone(small_dapple(p=2, n=4))
        sched.programs[0].ops.remove(OpId(F, 2, 0, 0))
        rep = verify_schedule(sched)
        assert {"ST002", "CH002"} <= rep.rule_ids()
        assert any(f.op == OpId(F, 2, 0, 1) for f in rep.by_rule("CH002"))

    def test_dropped_consumer_ch003(self):
        sched = clone(small_dapple(p=2, n=4))
        sched.programs[1].ops.remove(OpId(F, 2, 0, 1))
        rep = verify_schedule(sched)
        assert "CH003" in rep.rule_ids()


# ---------------------------------------------------------------------------
# Liveness / memory lint (LV001, LV002, AN001)
# ---------------------------------------------------------------------------


class TestLiveness:
    def test_duplicate_backward_is_use_after_free(self):
        sched = clone(small_dapple())
        ops = sched.programs[1].ops
        ops.append(OpId(B, 0, 0, 1))
        rep = verify_schedule(sched)
        assert {"ST003", "LV001"} <= rep.rule_ids()

    def test_dropped_backward_leaks(self):
        sched = clone(small_dapple())
        sched.programs[1].ops.remove(OpId(B, 3, 0, 1))
        rep = verify_schedule(sched)
        assert "LV002" in rep.rule_ids()
        (f,) = [f for f in rep.by_rule("LV002") if f.stage == 1]
        assert "leaked per iteration" in f.message
        assert any("never fully released" in line for line in f.witness)

    def test_wgrad_before_backward_is_use_after_free(self):
        sched = clone(build_schedule("zb", build_problem("zb", 2, 4)))
        ops = sched.programs[0].ops
        b = next(op for op in ops if op.kind is B)
        w = next(
            op for op in ops
            if op.kind is W
            and (op.microbatch, op.slice_idx, op.chunk)
            == (b.microbatch, b.slice_idx, b.chunk)
        )
        i, j = ops.index(b), ops.index(w)
        ops[i], ops[j] = ops[j], ops[i]
        rep = verify_schedule(sched)
        assert "LV001" in rep.rule_ids() or "DL001" in rep.rule_ids()

    def test_gpipe_order_diverges_from_dapple_closed_form_an001(self):
        # Re-order stage 0 as all-forwards-then-all-backwards: peak n
        # units, while the DAPPLE closed form promises p in-flight.
        sched = clone(small_dapple(p=2, n=6))
        ops = sched.programs[0].ops
        ops.sort(key=lambda op: (op.kind is not F, op.microbatch if op.kind is F else -op.microbatch))
        rep = verify_schedule(sched, method="dapple")
        (f,) = rep.by_rule("AN001")
        assert "exceeds" in f.message
        assert any("first op past the bound" in line for line in f.witness)

    def test_an001_needs_method(self):
        sched = clone(small_dapple(p=2, n=6))
        ops = sched.programs[0].ops
        ops.sort(key=lambda op: (op.kind is not F, op.microbatch if op.kind is F else -op.microbatch))
        rep = verify_schedule(sched)  # no method -> no closed form
        assert "AN001" not in rep.rule_ids()


# ---------------------------------------------------------------------------
# Rule selection, enforcement wrappers, caching
# ---------------------------------------------------------------------------


class TestEnforcement:
    def test_rule_selection_filters_findings(self):
        sched = clone(small_dapple())
        sched.programs[1].ops.remove(OpId(B, 3, 0, 1))
        rep = verify_schedule(sched, rules=("LV002",))
        assert rep.rule_ids() == {"LV002"}

    def test_validate_schedule_wrapper_raises_schedule_error(self):
        sched = clone(small_dapple())
        sched.programs[0].ops.append(sched.programs[0].ops[0])
        with pytest.raises(ScheduleError, match="duplicate"):
            validate_schedule(sched)

    def test_validate_schedule_deadlock_message_has_witness(self):
        sched = clone(small_dapple())
        swap_dependent_pair(sched)
        with pytest.raises(ScheduleError, match="minimal blocking cycle"):
            validate_schedule(sched)

    def test_ensure_verified_caches_then_invalidates(self):
        sched = build_schedule("dapple", build_problem("dapple", 2, 4))
        token = sched._verify_token  # set by the generator
        ensure_verified(sched)  # cache hit, no recheck
        assert sched._verify_token == token
        swap_dependent_pair(sched)  # in-place corruption, same op count
        with pytest.raises(ScheduleError):
            ensure_verified(sched, context="post-mutation")

    def test_assert_clean_raises_with_full_report(self):
        sched = clone(small_dapple())
        sched.programs[1].ops.remove(OpId(B, 3, 0, 1))
        with pytest.raises(ScheduleError, match="LV002"):
            assert_clean(sched, method="dapple")

    def test_simulator_rejects_corrupted_schedule(self):
        from repro.sim import UniformCost, simulate

        sched = clone(small_dapple())
        swap_dependent_pair(sched)
        with pytest.raises(ScheduleError, match="simulate"):
            simulate(sched, UniformCost(sched.problem))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_verify_clean_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["verify", "mepipe", "--p", "4", "--n", "8", "--s", "2",
                     "--wgrad-gemms", "2"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_verify_json_output(self, capsys):
        from repro.cli import main

        assert main(["verify", "dapple", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_verify_rule_subset(self, capsys):
        from repro.cli import main

        assert main(["verify", "dapple", "--rules", "dl001,st002"]) == 0
        capsys.readouterr()

    def test_verify_unknown_rule_exits_two(self, capsys):
        from repro.cli import main

        assert main(["verify", "dapple", "--rules", "XX999"]) == 2
        assert "unknown rule" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Golden sweep: every shipped schedule verifies error-clean
# ---------------------------------------------------------------------------


def golden_grid():
    """The acceptance grid: p in {2,4,8}, s in {1,4}, v in {1,2}."""
    for p in (2, 4, 8):
        yield ("gpipe", p, 8, 1, 1, 1)
        yield ("dapple", p, 8, 1, 1, 1)
        yield ("vpp", p, 8, 1, 2, 1)
        yield ("hanayo", p, 8, 1, 2, 1)
        for s in (1, 4):
            yield ("terapipe", p, 8, s, 1, 1)
        for g in (1, 2):  # unsplit-ish (fused W) vs split W fragments
            yield ("zb", p, 8, 1, 1, g)
            yield ("zbv", p, 8, 1, 2, g)
        for s in (1, 4):
            for v in (1, 2):
                yield ("svpp", p, 8, s, v, 1)
                yield ("mepipe", p, 8, s, v, 2)


@pytest.mark.parametrize(
    "method,p,n,s,v,g",
    list(golden_grid()),
    ids=lambda val: str(val),
)
def test_shipped_schedules_verify_clean(method, p, n, s, v, g):
    problem = build_problem(method, p, n, num_slices=s, virtual_size=v, wgrad_gemms=g)
    schedule = build_schedule(method, problem)
    report = verify_schedule(schedule, method=method)
    assert report.ok, report.render_text()
    # The only tolerated warning is the documented SVPP/MEPipe wrap
    # channel reorder at s >= p with v >= 2 (docs/verification.md).
    unexpected = [f for f in report.warnings if f.rule_id != "CH001"]
    assert not unexpected, report.render_text()
    if method not in ("svpp", "mepipe"):
        assert not report.warnings, report.render_text()
