"""The planner service: HTTP endpoints, jobs, dedup, quotas, deadlines.

The server runs in a background thread on its own asyncio loop with an
OS-assigned port; tests talk to it through :class:`ServiceClient` —
the same stdlib transport ``repro client`` uses — so these tests cover
the full wire path (parser, router, job store, SSE framing).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.obs import Event, QueueSink
from repro.schedules.base import ScheduleError
from repro.service import (
    PlannerService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    default_request_timeout,
)
from repro.service import jobs as jobs_module

#: A real-but-fast planner sweep (~0.1 s): small grid, no disk cache.
SMALL_PLAN = api.PlanRequest(
    model="13b",
    global_batch_size=32,
    methods=("mepipe",),
    max_spp=4,
    use_cache=False,
)


# ----------------------------------------------------------------------
# Timeout knob precedence (satellite: REPRO_CHANNEL_TIMEOUT threading)
# ----------------------------------------------------------------------
class TestTimeoutPrecedence:
    def test_default_is_the_channel_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_REQUEST_TIMEOUT", raising=False)
        monkeypatch.delenv("REPRO_CHANNEL_TIMEOUT", raising=False)
        assert default_request_timeout() == 60.0

    def test_channel_timeout_flows_through(self, monkeypatch):
        monkeypatch.delenv("REPRO_REQUEST_TIMEOUT", raising=False)
        monkeypatch.setenv("REPRO_CHANNEL_TIMEOUT", "17")
        assert default_request_timeout() == 17.0

    def test_request_timeout_beats_channel_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHANNEL_TIMEOUT", "17")
        monkeypatch.setenv("REPRO_REQUEST_TIMEOUT", "9")
        assert default_request_timeout() == 9.0

    def test_explicit_config_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUEST_TIMEOUT", "9")
        config = ServiceConfig(request_timeout_s=3.0)
        assert config.request_timeout_s == 3.0

    def test_config_resolves_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_REQUEST_TIMEOUT", raising=False)
        monkeypatch.setenv("REPRO_CHANNEL_TIMEOUT", "21")
        assert ServiceConfig().request_timeout_s == 21.0

    @pytest.mark.parametrize("raw", ["soon", "-1", "0"])
    def test_malformed_override_fails_loudly(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_REQUEST_TIMEOUT", raw)
        with pytest.raises(ScheduleError):
            default_request_timeout()


# ----------------------------------------------------------------------
# QueueSink: the obs-bus -> asyncio bridge
# ----------------------------------------------------------------------
class TestQueueSink:
    def test_drain_is_non_blocking_and_ordered(self):
        sink = QueueSink()
        assert sink.drain() == []
        events = [
            Event(kind="instant", name=f"e{i}", ts=float(i))
            for i in range(3)
        ]
        for event in events:
            sink.emit(event)
        assert sink.drain() == events
        assert not sink.finished

    def test_close_sentinel_sets_finished(self):
        sink = QueueSink()
        sink.emit(Event(kind="instant", name="tail", ts=0.0))
        sink.close()
        drained = sink.drain()
        assert [e.name for e in drained] == ["tail"]
        assert sink.finished

    def test_cross_thread_handoff(self):
        sink = QueueSink()

        def producer():
            for i in range(100):
                sink.emit(Event(kind="instant", name=f"p{i}", ts=float(i)))
            sink.close()

        thread = threading.Thread(target=producer)
        thread.start()
        seen: list[Event] = []
        while not sink.finished:
            seen.extend(sink.drain())
        thread.join()
        assert [e.name for e in seen] == [f"p{i}" for i in range(100)]


# ----------------------------------------------------------------------
# The live server
# ----------------------------------------------------------------------
class ServiceHarness:
    """A PlannerService on a daemon thread with its own event loop."""

    def __init__(self, config: ServiceConfig) -> None:
        self.service = PlannerService(config)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10.0), "service did not start"

    @property
    def store(self):
        return self.service.store

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(self.service.address, **kwargs)

    def shutdown(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(), self.loop
        )
        future.result(30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)
        self.loop.close()


@pytest.fixture()
def harness(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sweep-cache"))
    h = ServiceHarness(
        ServiceConfig(port=0, request_timeout_s=30.0, max_workers=8)
    )
    yield h
    h.shutdown()


class TestHttpEndpoints:
    def test_healthz(self, harness):
        data = harness.client().health()
        assert data["ok"] is True
        assert data["schema_version"] == api.SCHEMA_VERSION
        assert set(data["stats"]) >= {
            "jobs",
            "dedup_hits",
            "executed",
            "batch_size",
            "topology_class_hits",
            "worker_reuse",
        }

    def test_sync_response_matches_local_execute(self, harness):
        request = api.EvaluateRequest(
            method="mepipe", shape=api.ShapeSpec(slices=4, wgrad_gemms=3)
        )
        remote = harness.client().request(request)
        local = api.execute(request)
        assert remote == local
        assert remote.to_json() == local.to_json()

    def test_every_kind_is_routable(self, harness):
        client = harness.client()
        for request in (
            api.VerifyRequest(method="mepipe"),
            api.CheckModelRequest(method="mepipe"),
            api.EvaluateRequest(method="zb"),
            api.CapacityRequest(method="zbv"),
            api.SimulateRequest(method="dapple"),
        ):
            response = client.request(request)
            assert response.ok, request.KIND
            assert response.to_dict()["schema_version"] == api.SCHEMA_VERSION

    def test_unknown_method_maps_to_400(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client().request(api.EvaluateRequest(method="nosuch"))
        assert excinfo.value.status == 400
        assert excinfo.value.error.code == "unknown-method"
        assert excinfo.value.error.ok is False

    def test_safety_tier_rejection_maps_to_422(self, harness):
        # Interleaved VPP requires n % p == 0; n=2, p=4 is a
        # well-formed request the generator refuses.
        with pytest.raises(ServiceError) as excinfo:
            harness.client().request(
                api.VerifyRequest(
                    method="vpp",
                    shape=api.ShapeSpec(microbatches=2, virtual=2),
                )
            )
        assert excinfo.value.status == 422
        assert excinfo.value.error.code == "schedule-rejected"

    def test_unknown_route_is_404(self, harness):
        status, data = harness.client().call("GET", "/v1/frobnicate")
        assert status == 404
        assert data["code"] == "not-found"
        assert data["schema_version"] == api.SCHEMA_VERSION

    def test_get_on_request_endpoint_is_405(self, harness):
        status, data = harness.client().call("GET", "/v1/plan")
        assert status == 405
        assert data["code"] == "method-not-allowed"

    def test_malformed_json_is_400(self, harness):
        import http.client

        conn = http.client.HTTPConnection(
            harness.service.config.host, harness.service.config.port
        )
        try:
            conn.request(
                "POST", "/v1/evaluate", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            data = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "JSON" in data["message"]

    def test_schema_mismatch_is_rejected(self, harness):
        status, data = harness.client().call(
            "POST", "/v1/evaluate",
            body={"kind": "evaluate", "schema_version": 999},
        )
        assert status == 400
        assert data["code"] == "schema-mismatch"

    def test_mismatched_body_kind_is_rejected(self, harness):
        status, data = harness.client().call(
            "POST", "/v1/evaluate", body={"kind": "plan"}
        )
        assert status == 400

    def test_unknown_job_is_404(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client().job("job-does-not-exist")
        assert excinfo.value.status == 404


class TestJobsAndStreaming:
    def test_async_submit_poll_and_sse(self, harness):
        client = harness.client()
        descriptor = client.submit(SMALL_PLAN)
        assert descriptor["schema_version"] == api.SCHEMA_VERSION
        assert descriptor["status"] in ("queued", "running")
        job_id = descriptor["job_id"]

        # The SSE stream carries obs-bus events from the sweep, then a
        # terminal `done` event with the full job descriptor.
        events = list(client.events(job_id))
        names = [name for name, _ in events]
        assert names[-1] == "done"
        obs_payloads = [p for name, p in events if name == "obs"]
        assert obs_payloads, "expected telemetry on the stream"
        kinds = {p["kind"] for p in obs_payloads}
        assert kinds & {"span", "counter", "instant"}

        final = client.wait(job_id)
        assert final["status"] == "done"
        response = api.response_from_dict(final["response"])
        assert isinstance(response, api.PlanResponse)
        assert response.methods[0]["method"] == "mepipe"

    def test_sse_replays_for_finished_jobs(self, harness):
        client = harness.client()
        job_id = client.submit(SMALL_PLAN)["job_id"]
        client.wait(job_id)
        # Stream opened after completion: history replays, then done.
        events = list(client.events(job_id))
        assert events[-1][0] == "done"
        assert [name for name, _ in events].count("done") == 1

    def test_concurrent_identical_requests_share_one_execution(
        self, harness
    ):
        client = harness.client()
        executed_before = harness.store.executed

        def one(_: int) -> str:
            return client.request(SMALL_PLAN).to_json()

        with ThreadPoolExecutor(max_workers=32) as pool:
            bodies = list(pool.map(one, range(32)))

        # All 32 callers saw byte-identical responses...
        assert len(set(bodies)) == 1
        # ...from exactly one planner invocation.
        assert harness.store.executed == executed_before + 1
        assert harness.store.dedup_hits >= 31
        stats = client.health()["stats"]
        assert stats["executed"] == executed_before + 1

    def test_dedup_respects_fingerprint_volatile_fields(self, harness):
        # jobs/use_cache are volatile: they never change the planner's
        # answer, so requests differing only there still share a job.
        client = harness.client()
        variant = api.PlanRequest(
            model=SMALL_PLAN.model,
            global_batch_size=SMALL_PLAN.global_batch_size,
            methods=SMALL_PLAN.methods,
            max_spp=SMALL_PLAN.max_spp,
            use_cache=False,
            jobs=1,
        )
        assert variant.fingerprint() == SMALL_PLAN.fingerprint()
        executed_before = harness.store.executed
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(client.request, SMALL_PLAN),
                pool.submit(client.request, variant),
            ]
            results = [f.result() for f in futures]
        assert results[0] == results[1]
        assert harness.store.executed <= executed_before + 1


class _Slow:
    """Patchable stand-in for ``api.execute`` that blocks then answers."""

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s
        self.calls = 0

    def __call__(self, request, *, sink, cache=None):
        self.calls += 1
        time.sleep(self.delay_s)
        return api.EvaluateResponse(ok=True, text="slow done")


class TestQuotasAndDeadlines:
    def test_per_tenant_quota_yields_429(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setattr(jobs_module, "execute", _Slow(0.5))
        h = ServiceHarness(
            ServiceConfig(
                port=0, request_timeout_s=30.0, tenant_quota=2,
                max_workers=8,
            )
        )
        try:
            client = h.client(tenant="alice")
            distinct = [
                api.EvaluateRequest(method="mepipe", tw=1.0 + i)
                for i in range(3)
            ]
            first = client.submit(distinct[0])
            second = client.submit(distinct[1])
            with pytest.raises(ServiceError) as excinfo:
                client.submit(distinct[2])
            assert excinfo.value.status == 429
            assert excinfo.value.error.code == "quota-exceeded"
            assert excinfo.value.error.detail["tenant"] == "alice"

            # Another tenant is unaffected by alice's quota...
            bob = h.client(tenant="bob")
            third = bob.submit(distinct[2])
            # ...and attaching to an in-flight job is never charged.
            attach = bob.submit(distinct[0])
            assert attach["job_id"] == first["job_id"]

            for descriptor in (first, second, third):
                assert client.wait(descriptor["job_id"])["status"] == "done"
            # With capacity released, alice may submit again.
            fresh = client.submit(
                api.EvaluateRequest(method="mepipe", tw=9.0)
            )
            assert client.wait(fresh["job_id"])["status"] == "done"
        finally:
            h.shutdown()

    def test_deadline_surfaces_structured_timeout(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        slow = _Slow(1.0)
        monkeypatch.setattr(jobs_module, "execute", slow)
        h = ServiceHarness(ServiceConfig(port=0, request_timeout_s=30.0))
        try:
            client = h.client(timeout_s=0.2)
            with pytest.raises(ServiceError) as excinfo:
                client.request(api.EvaluateRequest(method="mepipe"))
            assert excinfo.value.status == 504
            error = excinfo.value.error
            assert error.code == "timeout"
            assert error.detail["timeout_s"] == 0.2
            job_id = error.detail["job_id"]

            # The computation was not cancelled: the job completes and
            # a patient poller still gets the full result.
            final = h.client().wait(job_id)
            assert final["status"] == "done"
            assert final["response"]["text"] == "slow done"
            assert slow.calls == 1
        finally:
            h.shutdown()

    def test_bad_timeout_query_is_rejected(self, harness):
        status, data = harness.client().call(
            "POST", "/v1/evaluate",
            body={"kind": "evaluate"},
            query={"timeout": "soon"},
        )
        assert status == 400
        assert data["code"] == "bad-timeout"


class TestRequestErrorsThroughJobs:
    def test_async_job_captures_request_error(self, harness):
        client = harness.client()
        descriptor = client.submit(api.EvaluateRequest(method="nosuch"))
        final = client.wait(descriptor["job_id"])
        assert final["status"] == "error"
        assert final["error"]["code"] == "unknown-method"
        # The SSE stream still terminates cleanly.
        events = list(client.events(descriptor["job_id"]))
        assert events[-1][0] == "done"
