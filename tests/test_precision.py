"""Tests for mixed-precision utilities (loss scaling, grad shrink)."""

import numpy as np
import pytest

from repro.nn.precision import (
    GradNormClipper,
    LossScaler,
    has_overflow,
    shrink_embedding_gradients,
)


def grads(values):
    return {"w": np.array(values, dtype=float)}


class TestOverflowDetection:
    def test_clean(self):
        assert not has_overflow(grads([1.0, -2.0]))

    def test_inf_and_nan(self):
        assert has_overflow(grads([1.0, np.inf]))
        assert has_overflow(grads([np.nan]))


class TestLossScaler:
    def test_scales_loss(self):
        scaler = LossScaler(scale=1024.0)
        assert scaler.scale_loss(2.0) == 2048.0

    def test_unscale_divides(self):
        scaler = LossScaler(scale=8.0)
        g = grads([8.0, 16.0])
        assert scaler.unscale_and_check(g)
        assert np.allclose(g["w"], [1.0, 2.0])

    def test_overflow_skips_and_backs_off(self):
        scaler = LossScaler(scale=1024.0)
        g = grads([np.inf])
        assert not scaler.unscale_and_check(g)
        assert scaler.scale == 512.0
        assert scaler.skipped_steps == 1
        assert np.all(g["w"] == 0.0)

    def test_growth_after_clean_interval(self):
        scaler = LossScaler(scale=4.0, growth_interval=3)
        for _step in range(3):
            assert scaler.unscale_and_check(grads([1.0]))
        assert scaler.scale == 8.0

    def test_overflow_resets_growth_counter(self):
        scaler = LossScaler(scale=4.0, growth_interval=2)
        scaler.unscale_and_check(grads([1.0]))
        scaler.unscale_and_check(grads([np.inf]))
        scaler.unscale_and_check(grads([1.0]))
        assert scaler.scale == 2.0  # backed off, no growth yet

    def test_scale_bounds(self):
        scaler = LossScaler(scale=1.0, min_scale=1.0)
        scaler.unscale_and_check(grads([np.inf]))
        assert scaler.scale == 1.0
        scaler2 = LossScaler(scale=2.0**24, max_scale=2.0**24, growth_interval=1)
        scaler2.unscale_and_check(grads([1.0]))
        assert scaler2.scale == 2.0**24

    def test_recovers_training_after_spike(self):
        """A transient overflow must not poison subsequent steps."""
        scaler = LossScaler(scale=64.0)
        assert not scaler.unscale_and_check(grads([np.inf]))
        g = grads([32.0])
        assert scaler.unscale_and_check(g)
        assert g["w"][0] == pytest.approx(1.0)


class TestEmbeddingShrink:
    def test_scales_embedding_grad_only(self):
        from repro.data import token_batches
        from repro.model import tiny_spec
        from repro.nn import build_model, sequential_step

        spec = tiny_spec(hidden_size=16, num_layers=1, num_heads=2,
                         ffn_hidden_size=32, vocab_size=11, seq_length=8)
        model = build_model(spec, seed=0)
        tokens, targets = token_batches(11, 1, 1, 8, seed=0)
        sequential_step(model, tokens, targets)
        before_emb = model.embedding.grads["table"].copy()
        before_other = model.components[1].grads["wq"].copy()
        shrink_embedding_gradients(model, alpha=0.1)
        assert np.allclose(model.embedding.grads["table"], 0.1 * before_emb)
        assert np.array_equal(model.components[1].grads["wq"], before_other)

    def test_alpha_validation(self):
        from repro.model import tiny_spec
        from repro.nn import build_model

        model = build_model(tiny_spec(), seed=0)
        with pytest.raises(ValueError):
            shrink_embedding_gradients(model, alpha=0.0)


class TestGradClipper:
    def test_noop_under_limit(self):
        clipper = GradNormClipper(max_norm=10.0)
        g = grads([3.0, 4.0])
        norm = clipper.clip(g)
        assert norm == pytest.approx(5.0)
        assert np.allclose(g["w"], [3.0, 4.0])

    def test_clips_to_limit(self):
        clipper = GradNormClipper(max_norm=1.0)
        g = grads([3.0, 4.0])
        clipper.clip(g)
        assert np.linalg.norm(g["w"]) == pytest.approx(1.0)
        assert clipper.last_norm == pytest.approx(5.0)
