"""Property-based tests across the analytical layers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    LLAMA_13B,
    attention_score_flops,
    layer_slice_flops,
    sample_activation_bytes,
    static_bytes_per_device,
)
from repro.schedules import analyze

powers = st.sampled_from([1, 2, 4, 8, 16])


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=0, max_value=4096))
def test_attention_flops_monotone_in_offset(tokens, offset):
    later = attention_score_flops(LLAMA_13B, tokens, offset + 128)
    earlier = attention_score_flops(LLAMA_13B, tokens, offset)
    assert later >= earlier


@settings(max_examples=50, deadline=None)
@given(powers)
def test_slicing_conserves_flops(s):
    """Cutting a sample into slices never creates or destroys FLOPs."""
    spec = LLAMA_13B
    t = spec.seq_length // s
    full = layer_slice_flops(spec, spec.seq_length, 0)
    parts = [layer_slice_flops(spec, t, i * t) for i in range(s)]
    assert sum(p.forward for p in parts) == full.forward
    assert sum(p.backward_wgrad for p in parts) == full.backward_wgrad
    assert sum(p.backward_dgrad for p in parts) == full.backward_dgrad


@settings(max_examples=40, deadline=None)
@given(powers, powers)
def test_static_memory_antitone_in_shards(p1, p2):
    if p1 > p2:
        p1, p2 = p2, p1
    more = static_bytes_per_device(LLAMA_13B, p1, 64)
    fewer = static_bytes_per_device(LLAMA_13B, p2, 64)
    assert fewer <= more


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=2, max_value=16),
       st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=4),
       st.sampled_from(["dapple", "gpipe", "terapipe", "svpp"]))
def test_closed_forms_are_valid_fractions(p, n, s, v, method):
    if method in ("dapple", "gpipe"):
        s = v = 1
    if method == "terapipe":
        v = 1
    result = analyze(method, p, n, s=s, v=v)
    assert 0.0 <= result.bubble_ratio < 1.0
    assert 0.0 < result.memory_units <= max(n / p, n)


@settings(max_examples=40, deadline=None)
@given(powers, st.integers(min_value=1, max_value=64))
def test_svpp_memory_never_exceeds_dapple(s, n):
    p = 8
    svpp = analyze("svpp", p, n, s=s)
    dapple = analyze("dapple", p, n)
    assert svpp.memory_units <= dapple.memory_units + 1e-12


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=32),
       st.integers(min_value=1, max_value=128))
def test_svpp_bubble_improves_with_slices(p, n):
    prev = 1.0
    for s in (1, 2, 4, 8, 16):
        bubble = analyze("svpp", p, n, s=s).bubble_ratio
        assert bubble <= prev + 1e-12
        prev = bubble


def test_recompute_activation_cut():
    full = sample_activation_bytes(LLAMA_13B)
    lean = sample_activation_bytes(LLAMA_13B, recompute=True)
    assert lean / full == pytest.approx(0.06, abs=0.03)
