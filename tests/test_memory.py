"""Tests for repro.model.memory."""

import pytest

from repro.model import (
    GiB,
    LLAMA_13B,
    LLAMA_34B,
    activation_bytes_per_token_per_layer,
    budget_for,
    sample_activation_bytes,
    static_bytes_per_device,
    temporary_bytes,
)


class TestActivationModel:
    def test_recompute_keeps_only_layer_input(self):
        spec = LLAMA_13B
        full = activation_bytes_per_token_per_layer(spec)
        recomp = activation_bytes_per_token_per_layer(spec, recompute=True)
        assert recomp == 2 * spec.hidden_size
        # Section 7.3: recomputation reduces activation memory by ~90%.
        assert recomp / full < 0.10

    def test_sample_activation_scale_13b(self):
        # One 4096-token sample through 38 layers: tens of GiB; this is
        # why 24 GB cards cannot train without partitioning activations.
        a = sample_activation_bytes(LLAMA_13B)
        assert 15 * GiB < a < 35 * GiB

    def test_activation_grows_with_model(self):
        assert sample_activation_bytes(LLAMA_34B) > sample_activation_bytes(LLAMA_13B)


class TestStaticModel:
    def test_34b_optimizer_anchor(self):
        """Section 7.4: optimizer ~6.375 GB/worker; params+grads 34*4/p GB."""
        m = LLAMA_34B.total_params()
        static = static_bytes_per_device(LLAMA_34B, pipeline_stages=16, total_devices=64)
        optimizer = m * 12 // 64
        assert optimizer == pytest.approx(6.375e9 * (m / 34e9), rel=0.01)
        params_grads = static - optimizer
        assert params_grads == pytest.approx(m * 4 / 16, rel=0.01)

    def test_more_stages_less_static(self):
        s8 = static_bytes_per_device(LLAMA_13B, 8, 64)
        s16 = static_bytes_per_device(LLAMA_13B, 16, 64)
        assert s16 < s8

    def test_fp32_grad_accum_adds_memory(self):
        lean = static_bytes_per_device(LLAMA_13B, 8, 64)
        fat = static_bytes_per_device(LLAMA_13B, 8, 64, fp32_grad_accum=True)
        assert fat > lean


class TestBudget:
    def test_34b_pp16_leaves_about_5gb(self):
        """Section 7.4: with PP=16 on 24 GB cards, roughly 5 GB are left
        for activations (we land at the generous end of 'around 5')."""
        budget = budget_for(
            LLAMA_34B,
            capacity_bytes=24 * GiB,
            pipeline_stages=16,
            total_devices=64,
            micro_batch_tokens=4096 // 16,
        )
        left = budget.available_for_activations
        assert 4 * GiB < left < 8.5 * GiB

    def test_infeasible_budget_goes_negative(self):
        budget = budget_for(
            LLAMA_34B,
            capacity_bytes=24 * GiB,
            pipeline_stages=4,
            total_devices=64,
            micro_batch_tokens=4096,
        )
        assert budget.available_for_activations < 0

    def test_last_stage_pays_for_logits(self):
        last = temporary_bytes(LLAMA_13B, 4096, is_last_stage=True)
        mid = temporary_bytes(LLAMA_13B, 4096, is_last_stage=False)
        assert last > mid
