"""Golden equivalence: the array-native greedy engine replays the
pre-rewrite engine byte for byte.

``repro.schedules.greedy`` generates on flat integer/float tables
(packed priority keys, canonical op codes, a time-bucketed wake queue)
and emits the compiled graph directly.  It must be a pure speedup of
the dict-of-``OpId`` engine preserved verbatim in
``repro.schedules.greedy_reference`` — same program orders, same
fingerprints, same compiled-graph tables, same deadlock witnesses —
across every policy mode, placement, and backward split.

The seeded mutation tests then show the harness has teeth: perturbing
a packed tiebreak table, the cap-comparison epsilon, or the arrival
epsilon each produces a divergence this suite catches.
"""

from dataclasses import replace

import pytest

import repro.schedules.greedy as greedy
from repro.schedules import gencache
from repro.schedules.base import PipelineProblem, ScheduleError
from repro.schedules.graph import compiled_graph
from repro.schedules.greedy import GreedyPolicy, greedy_schedule
from repro.schedules.greedy_reference import greedy_reference
from repro.sim.cost import UniformCost

GRAPH_FIELDS = (
    "fingerprint", "ops", "kind", "cell", "gemm", "stage", "pos",
    "stage_bounds", "pred_indptr", "pred", "pred_cross",
    "succ_indptr", "succ",
)

SHAPES = [
    # (num_stages, num_microbatches, num_slices, virtual_size)
    (2, 4, 1, 1),
    (4, 8, 2, 1),
    (2, 6, 2, 2),
    (3, 5, 3, 1),
    (4, 4, 4, 2),
]

POLICIES = [
    GreedyPolicy(),
    GreedyPolicy(cap_slope=0, backward_priority="fifo"),
    GreedyPolicy(forward_priority="mb_major"),
    GreedyPolicy(forward_priority="plain", fill_with_wgrad=False),
    GreedyPolicy(strong_reserve=True, wgrad_defer_samples=0.0),
    GreedyPolicy(wgrad_units=0.5, wgrad_defer_samples=1.5),
]


@pytest.fixture(autouse=True)
def cold_gen_cache():
    """Force every generation in this module through the engine."""
    gencache.clear()
    gencache.set_enabled(False)
    yield
    gencache.set_enabled(None)
    gencache.clear()


def reference_with_fallback(problem, policy, cost):
    """The reference engine under greedy_schedule's retry semantics."""
    try:
        return greedy_reference(problem, policy, cost, "greedy")
    except ScheduleError as first_err:
        if policy.strong_reserve:
            raise
        try:
            return greedy_reference(
                problem, replace(policy, strong_reserve=True), cost, "greedy"
            )
        except ScheduleError as retry_err:
            raise retry_err from first_err


def problem_grid(shape):
    p, n, s, v = shape
    for split in (False, True):
        for gemms in (1, 2):
            if gemms > 1 and not split:
                continue
            for placement in ("interleaved", "vshape"):
                yield PipelineProblem(
                    num_stages=p,
                    num_microbatches=n,
                    num_slices=s,
                    virtual_size=v,
                    split_backward=split,
                    wgrad_gemms=gemms,
                    chunk_placement=placement,
                )


def costs_for(problem):
    return [
        None,
        UniformCost(
            problem,
            tf=1.3,
            tb=2.1,
            tw=0.7,
            imbalance=tuple(1.0 + 0.1 * i for i in range(problem.num_slices)),
        ),
    ]


def outcomes_match(problem, policy, cost):
    """Whether engine and reference agree byte for byte on one cell.

    Agreement means: both deadlock with the same message, or both
    produce the same programs, the same content fingerprint, and the
    same compiled-graph tables.
    """
    try:
        ref = reference_with_fallback(problem, policy, cost)
    except ScheduleError as exc:
        ref, ref_err = None, str(exc)
    try:
        new = greedy_schedule(problem, policy, cost)
    except ScheduleError as exc:
        new, new_err = None, str(exc)
    if ref is None or new is None:
        return ref is None and new is None and ref_err == new_err
    new_graph = compiled_graph(new)
    ref_graph = compiled_graph(ref)
    if any(
        getattr(new_graph, fld) != getattr(ref_graph, fld)
        for fld in GRAPH_FIELDS
    ):
        return False
    return [pr.ops for pr in new.programs] == [pr.ops for pr in ref.programs]


@pytest.mark.parametrize("shape", SHAPES, ids=str)
def test_golden_grid(shape):
    for problem in problem_grid(shape):
        for policy in POLICIES:
            for cost in costs_for(problem):
                assert outcomes_match(problem, policy, cost), (
                    problem, policy, cost,
                )


# A first-stage cap that deadlocks this shape's fast reservation rule
# mid-generation (the strong-reserve retry then recovers it).
DEADLOCK_PROBLEM = PipelineProblem(
    num_stages=4, num_microbatches=3, num_slices=2, virtual_size=2,
)
DEADLOCK_CAP = 7


def test_deadlock_witness_matches():
    """A deadlocking attempt must raise the reference's exact message,
    runnable-but-unscheduled witness included."""
    policy = GreedyPolicy(first_stage_cap=DEADLOCK_CAP)
    with pytest.raises(ScheduleError) as ref:
        greedy_reference(DEADLOCK_PROBLEM, policy, None, "greedy")
    with pytest.raises(ScheduleError) as new:
        greedy._greedy_once(DEADLOCK_PROBLEM, policy, None, "greedy")
    assert str(new.value) == str(ref.value)
    assert "greedy deadlock" in str(new.value)


def test_fallback_recovers_deadlock_and_chains_when_it_cannot():
    """The strong-reserve retry recovers the deadlocking cell above;
    when even the retry wedges, the retry's ScheduleError carries the
    fast rule's original failure as its __cause__."""
    recovered = greedy_schedule(
        DEADLOCK_PROBLEM, GreedyPolicy(first_stage_cap=DEADLOCK_CAP), None
    )
    assert recovered.programs  # fallback produced a schedule

    doubly_wedged = PipelineProblem(
        num_stages=2, num_microbatches=4, num_slices=2, virtual_size=2,
    )
    with pytest.raises(ScheduleError) as caught:
        greedy_schedule(doubly_wedged, GreedyPolicy(first_stage_cap=2), None)
    cause = caught.value.__cause__
    assert isinstance(cause, ScheduleError)
    assert cause is not caught.value


# ----------------------------------------------------------------------
# Seeded mutations: the equivalence harness must catch each of these.
# ----------------------------------------------------------------------

MUTATION_SHAPES = [(4, 8, 2, 1), (4, 4, 4, 2)]


def count_divergences():
    diverged = 0
    for shape in MUTATION_SHAPES:
        for problem in problem_grid(shape):
            for policy in POLICIES:
                for cost in costs_for(problem):
                    if not outcomes_match(problem, policy, cost):
                        diverged += 1
    return diverged


def _swapped(keys):
    keys = list(keys)
    keys[0], keys[-1] = keys[-1], keys[0]
    return keys


def test_mutation_forward_tiebreak_is_caught(monkeypatch):
    original = greedy._fkeys_round_desc
    monkeypatch.setitem(
        greedy._PACKED_FORWARD_KEYS,
        "round_desc",
        lambda problem: _swapped(original(problem)),
    )
    assert count_divergences() > 0


def test_mutation_backward_tiebreak_is_caught(monkeypatch):
    # Inverting the packed order flips every backward tiebreak.
    original = greedy._bkeys_children
    monkeypatch.setitem(
        greedy._PACKED_BACKWARD_KEYS,
        "children",
        lambda problem: [-k for k in original(problem)],
    )
    assert count_divergences() > 0


def test_mutation_cap_epsilon_is_caught(monkeypatch):
    # A macroscopic cap slack admits forwards the reference rejects.
    monkeypatch.setattr(greedy, "_CAP_EPS", 1.5)
    assert count_divergences() > 0


def test_mutation_arrival_epsilon_is_caught(monkeypatch):
    # A macroscopic arrival tolerance treats ops as arrived long before
    # their inputs land.
    monkeypatch.setattr(greedy, "ARRIVAL_EPS", 0.25)
    assert count_divergences() > 0


def test_unmutated_grid_is_clean():
    """Sanity for the mutation tests: the divergence counter reads zero
    on the unmutated engine over the same grid."""
    assert count_divergences() == 0
