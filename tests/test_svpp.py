"""Tests for SVPP and MEPipe schedules against the paper's claims."""

import pytest

from repro.schedules import (
    ScheduleError,
    analyze,
    build_problem,
    build_schedule,
    default_first_stage_cap,
    mepipe_problem,
    mepipe_schedule,
    min_first_stage_cap,
    svpp_problem,
    svpp_schedule,
    svpp_variants,
    validate_schedule,
)
from repro.sim import UniformCost, simulate


def run_svpp(p, n, s, v=1, f=None, **cost_kwargs):
    problem = svpp_problem(p, n, s, virtual_size=v)
    schedule = svpp_schedule(problem, forwards_before_first_backward=f)
    validate_schedule(schedule)
    return simulate(schedule, UniformCost(problem, **cost_kwargs))


class TestTable3Agreement:
    """Simulated SVPP vs the closed forms (n >= p regime, exact for v=1)."""

    @pytest.mark.parametrize(
        "p,n,s,v",
        [(4, 8, 2, 1), (4, 8, 4, 1), (4, 8, 8, 1), (8, 8, 4, 1), (8, 16, 4, 1),
         (4, 8, 2, 2)],
    )
    def test_bubble_matches_formula(self, p, n, s, v):
        result = run_svpp(p, n, s, v)
        expected = analyze("svpp", p, n, s=s, v=v)
        assert result.bubble_ratio == pytest.approx(expected.bubble_ratio, abs=1e-9)

    @pytest.mark.parametrize(
        "p,n,s,v",
        [(4, 8, 2, 1), (4, 8, 4, 1), (8, 8, 4, 1), (4, 8, 2, 2), (8, 16, 4, 2),
         (4, 2, 2, 2), (8, 4, 4, 1), (8, 2, 8, 2)],
    )
    def test_memory_matches_formula_exactly(self, p, n, s, v):
        result = run_svpp(p, n, s, v)
        expected = analyze("svpp", p, n, s=s, v=v)
        assert result.peak_activation_units == pytest.approx(expected.memory_units)

    @pytest.mark.parametrize(
        "p,n,s,v", [(4, 2, 2, 2), (8, 4, 4, 1), (8, 2, 8, 2), (2, 4, 4, 2)]
    )
    def test_small_cluster_bubble_near_formula(self, p, n, s, v):
        """Drain-phase tails (n < p, or s > p with chunk rounds): the
        greedy stays within 0.1 of the closed form, never below it."""
        result = run_svpp(p, n, s, v)
        expected = analyze("svpp", p, n, s=s, v=v)
        assert result.bubble_ratio >= expected.bubble_ratio - 1e-9
        assert result.bubble_ratio <= expected.bubble_ratio + 0.10


class TestFigure4Anchors:
    def test_fig4a_peak_is_5_8_A(self):
        """Figure 4(a): p=4, s=2, v=1 peaks at 5/8 A on stage 0."""
        result = run_svpp(4, 4, 2, 1)
        assert result.stages[0].peak_activation_units == pytest.approx(5 / 8)

    def test_fig4b_peak_is_9_16_A(self):
        """Figure 4(b): p=4, s=2, v=2 peaks at 9/16 A."""
        result = run_svpp(4, 4, 2, 2)
        assert result.stages[0].peak_activation_units == pytest.approx(9 / 16)

    def test_memory_reduction_vs_dapple_70_80_pct(self):
        """Figure 1 headline: s=4 and s=8 cut peak activation memory by
        more than 70% and 80% vs whole-sample 1F1B."""
        pr = build_problem("dapple", 8, 8)
        dapple = simulate(build_schedule("dapple", pr), UniformCost(pr))
        s4 = run_svpp(8, 8, 4, 2)
        s8 = run_svpp(8, 8, 8, 2)
        assert 1 - s4.peak_activation_units / dapple.peak_activation_units > 0.70
        assert 1 - s8.peak_activation_units / dapple.peak_activation_units > 0.80


class TestVariants:
    def test_variant_range(self):
        problem = svpp_problem(4, 2, 2, virtual_size=2)
        fs = svpp_variants(problem)
        assert fs[0] == default_first_stage_cap(problem) == 9
        assert fs[-1] == min_first_stage_cap(problem) == 4

    def test_memory_monotone_in_f(self):
        """Figure 5: delaying forwards trades bubbles for memory."""
        problem = svpp_problem(4, 4, 2, virtual_size=2)
        mems, bubbles = [], []
        for f in svpp_variants(problem):
            r = simulate(
                svpp_schedule(problem, forwards_before_first_backward=f),
                UniformCost(problem),
            )
            mems.append(r.peak_activation_units)
            bubbles.append(r.bubble_ratio)
        assert mems == sorted(mems, reverse=True)
        assert bubbles[0] <= bubbles[-1]

    def test_minimum_variant_halves_memory(self):
        """Figure 5(c) vs 5(a): ~50% memory for ~50% more bubbles."""
        problem = svpp_problem(4, 2, 2, virtual_size=2)
        fs = svpp_variants(problem)
        top = simulate(svpp_schedule(problem, forwards_before_first_backward=fs[0]),
                       UniformCost(problem))
        bottom = simulate(svpp_schedule(problem, forwards_before_first_backward=fs[-1]),
                          UniformCost(problem))
        assert bottom.peak_activation_units == pytest.approx(
            0.5 * top.peak_activation_units, rel=0.01)
        assert bottom.bubble_ratio > top.bubble_ratio

    def test_f_below_minimum_rejected(self):
        problem = svpp_problem(4, 2, 2, virtual_size=2)
        with pytest.raises(ScheduleError):
            svpp_schedule(problem, forwards_before_first_backward=3)

    def test_f_above_maximum_rejected(self):
        problem = svpp_problem(4, 2, 2, virtual_size=2)
        with pytest.raises(ScheduleError):
            svpp_schedule(problem, forwards_before_first_backward=10)

    def test_all_variants_deadlock_free(self):
        for v in (1, 2):
            problem = svpp_problem(4, 3, 2, virtual_size=v)
            for f in svpp_variants(problem):
                schedule = svpp_schedule(problem, forwards_before_first_backward=f)
                validate_schedule(schedule)


class TestBackwardRescheduling:
    def test_children_priority_beats_fifo_with_virtual_chunks(self):
        """Section 4.3's rescheduling pays off when v > 1."""
        problem = svpp_problem(4, 8, 2, virtual_size=2)
        opt = simulate(svpp_schedule(problem, optimize_backward_order=True),
                       UniformCost(problem))
        fifo = simulate(svpp_schedule(problem, optimize_backward_order=False),
                        UniformCost(problem))
        assert opt.makespan <= fifo.makespan
        assert opt.bubble_ratio < fifo.bubble_ratio

    def test_same_memory_either_way(self):
        problem = svpp_problem(4, 8, 2, virtual_size=2)
        opt = simulate(svpp_schedule(problem, optimize_backward_order=True),
                       UniformCost(problem))
        fifo = simulate(svpp_schedule(problem, optimize_backward_order=False),
                        UniformCost(problem))
        assert opt.peak_activation_units == pytest.approx(fifo.peak_activation_units)


class TestMEPipe:
    def _cost(self, problem):
        # Figure 7 setup: slice 0 forward is 75% of slice 1; weight
        # gradients are balanced (no attention-score term).
        return UniformCost(problem, tf=1.0, tb=1.0, tw=0.8,
                           imbalance=(0.75, 1.0))

    def test_schedules_validate(self):
        problem = mepipe_problem(4, 4, 2, wgrad_gemms=4)
        for fg in (True, False):
            validate_schedule(
                mepipe_schedule(problem, fine_grained_wgrad=fg))

    def test_fine_grained_beats_immediate(self):
        """Section 7.5: dynamic W scheduling fills imbalance bubbles."""
        problem = mepipe_problem(4, 8, 2, wgrad_gemms=4)
        cost = self._cost(problem)
        fine = simulate(mepipe_schedule(problem, cost=cost), cost)
        imm = simulate(
            mepipe_schedule(problem, cost=cost, fine_grained_wgrad=False), cost)
        assert fine.makespan < imm.makespan

    def test_all_wgrads_executed(self):
        problem = mepipe_problem(2, 2, 2, wgrad_gemms=3)
        schedule = mepipe_schedule(problem)
        from repro.schedules import OpKind
        w = [op for s in range(2) for op in schedule.stage_ops(s)
             if op.kind is OpKind.W]
        assert len(w) == 2 * 2 * 2 * 3

    def test_requires_split_backward(self):
        with pytest.raises(ScheduleError):
            mepipe_schedule(svpp_problem(2, 2, 2))

    def test_later_stages_defer_more_wgrad(self):
        """Section 5: subsequent stages postpone W into the tail."""
        from repro.schedules import OpKind
        problem = mepipe_problem(4, 4, 2, wgrad_gemms=2)
        cost = self._cost(problem)
        result = simulate(mepipe_schedule(problem, cost=cost), cost)

        def mean_w_backlog(stage):
            backlog, total, count = 0, 0, 0
            for record in result.stage_records(stage):
                if record.op.kind is OpKind.B:
                    backlog += 1
                elif record.op.kind is OpKind.W:
                    backlog -= 1 / problem.wgrad_gemms
                total += backlog
                count += 1
            return total / count

        assert mean_w_backlog(3) > mean_w_backlog(0)
