"""Seeded mutation tests of the capacity analyzer's CP rule family.

Every rule is triggered on purpose and asserted by exact id with its
minimal witness: a hand-built two-stage schedule whose all-forwards
stage-0 program deadlocks under unit rings (CP001), invalid and
incomplete capacity maps (CP002), deliberately starved-but-live rings
(CP003), and tampered certificates (CP004).  The CLI round-trip tests
pin the ``repro capacity`` / ``repro verify --capacity`` JSON contract.
"""

import dataclasses
import json

import pytest

from repro.analysis.capacity import (
    CAPACITY_RULES,
    certify_capacities,
    check_capacities,
    cross_validate_capacities,
    infer_capacities,
)
from repro.schedules import (
    PipelineProblem,
    Schedule,
    StageProgram,
    build_problem,
    build_schedule,
)
from repro.schedules.base import OpId, OpKind
from repro.sim import UniformCost


def F(mb, c):
    return OpId(OpKind.F, mb, 0, c)


def B(mb, c):
    return OpId(OpKind.B, mb, 0, c)


def two_stage_all_forwards():
    """p=2, n=4, stage 0 runs every forward before any backward.

    Valid (deadlock-free) with unbounded channels, but under unit
    rings on both channels the classic bounded-buffer cycle appears:
    stage 0 cannot send F2 until stage 1 frees the F slot, stage 1
    cannot reach that recv before its next B, whose slot is held until
    stage 0 finishes all forwards.
    """
    problem = PipelineProblem(num_stages=2, num_microbatches=4)
    programs = [
        StageProgram(0, [F(0, 0), F(1, 0), F(2, 0), F(3, 0),
                         B(0, 0), B(1, 0), B(2, 0), B(3, 0)]),
        StageProgram(1, [F(0, 1), B(0, 1), F(1, 1), B(1, 1),
                         F(2, 1), B(2, 1), F(3, 1), B(3, 1)]),
    ]
    return Schedule(problem=problem, programs=programs,
                    name="all-forwards-2x4")


def mepipe_subject():
    problem = build_problem("mepipe", 4, 8, num_slices=4, wgrad_gemms=3)
    schedule = build_schedule("mepipe", problem)
    return schedule, UniformCost(problem, tw=0.5)


FWD = (0, 1, "F")
BWD = (1, 0, "B")


class TestCP001Deadlock:
    def test_unit_rings_deadlock_with_minimal_cycle(self):
        report = check_capacities(
            two_stage_all_forwards(), capacities={FWD: 1, BWD: 1}
        )
        assert not report.ok
        assert report.rule_ids() == {"CP001"}
        (finding,) = report.findings
        assert "bounded-channel deadlock" in finding.message
        assert "saturates at capacity 1" in finding.message
        assert finding.witness[0] == "minimal blocking cycle (4 edges):"
        slot_lines = [w for w in finding.witness if "slot reuse" in w]
        assert len(slot_lines) == 2  # both channels sit on the cycle
        assert any("(capacity 1)" in w for w in slot_lines)

    def test_minimal_capacities_are_incomparable(self):
        """Relaxing either channel alone breaks the cycle — the joint
        minimum is not unique, which is why inference only promises a
        componentwise-local minimum."""
        sched = two_stage_all_forwards()
        assert check_capacities(sched, capacities={FWD: 2, BWD: 1}).ok
        assert check_capacities(sched, capacities={FWD: 1, BWD: 2}).ok

    def test_inferred_vector_is_feasible_and_minimal(self):
        sched = two_stage_all_forwards()
        plan = infer_capacities(sched)
        caps = plan.capacities("deadlock-free")
        assert set(caps) == {FWD, BWD}
        assert check_capacities(sched, capacities=caps).ok
        for key in caps:
            starved = dict(caps)
            starved[key] -= 1
            assert not check_capacities(sched, capacities=starved).ok, key


class TestCP002InvalidCapacity:
    def test_zero_capacity_is_named(self):
        report = check_capacities(
            two_stage_all_forwards(), capacities={FWD: 0, BWD: 1}
        )
        assert report.rule_ids() == {"CP002"}
        (finding,) = report.findings
        assert "capacity 0" in finding.message
        assert "at least 1 slot" in finding.message
        assert finding.stage == FWD[0]
        assert finding.witness == ("messages: 4",)

    def test_missing_channel_is_named(self):
        report = check_capacities(
            two_stage_all_forwards(), capacities={FWD: 2}
        )
        assert report.rule_ids() == {"CP002"}
        (finding,) = report.findings
        assert "stage 1 -> stage 0 (B)" in finding.message
        assert "no configured capacity" in finding.message

    def test_unknown_channel_is_named(self):
        report = check_capacities(
            two_stage_all_forwards(),
            capacities={FWD: 2, BWD: 2, (0, 1, "W"): 1},
        )
        assert report.rule_ids() == {"CP002"}
        (finding,) = report.findings
        assert "unknown channel" in finding.message
        assert "stage 0 -> stage 1 (W)" in finding.message
        assert any("known channel" in w for w in finding.witness)


class TestCP003Backpressure:
    def test_starved_live_rings_warn_with_makespans(self):
        schedule, cost = mepipe_subject()
        plan = infer_capacities(schedule, cost)
        dl = plan.capacities("deadlock-free")
        bp = plan.capacities("backpressure-free")
        assert dl != bp  # the subject genuinely backpressures
        report = check_capacities(schedule, capacities=dl, cost=cost)
        assert report.ok  # CP003 is a warning, not an error
        assert report.rule_ids() == {"CP003"}
        (finding,) = report.findings
        assert finding.severity.name == "WARNING"
        assert "lengthen the critical path" in finding.message
        assert any(w.startswith("unbounded makespan:") for w in finding.witness)
        assert any(w.startswith("bounded makespan:") for w in finding.witness)
        tight = [w for w in finding.witness if "backpressure-free" in w]
        assert tight  # names every under-provisioned channel
        for line in tight:
            assert "capacity" in line and "<" in line

    def test_backpressure_free_vector_is_silent(self):
        schedule, cost = mepipe_subject()
        plan = infer_capacities(schedule, cost)
        report = check_capacities(
            schedule, capacities=plan.capacities("backpressure-free"),
            cost=cost,
        )
        assert report.ok
        assert report.findings == []
        assert report.checked_rules == ("CP001", "CP002", "CP003")


class TestCP004CertificateTamper:
    def test_clean_certificate_cross_validates(self):
        schedule, cost = mepipe_subject()
        cert = certify_capacities(schedule, cost)
        report = cross_validate_capacities(schedule, cost, cert)
        assert report.ok, report.render_text()
        assert report.findings == []
        assert report.checked_rules == CAPACITY_RULES

    def test_tampered_makespan_is_caught(self):
        schedule, cost = mepipe_subject()
        cert = certify_capacities(schedule, cost)
        forged = dataclasses.replace(cert, makespan=cert.makespan + 1.0)
        report = cross_validate_capacities(schedule, cost, forged)
        assert not report.ok
        assert "CP004" in report.rule_ids()
        (finding,) = report.by_rule("CP004")
        assert "bounded makespan does not reproduce" in finding.message
        assert any(w.startswith("certified:") for w in finding.witness)
        assert any(w.startswith("recomputed:") for w in finding.witness)

    def test_tampered_unbounded_makespan_is_caught(self):
        schedule, cost = mepipe_subject()
        cert = certify_capacities(schedule, cost)
        forged = dataclasses.replace(
            cert, unbounded_makespan=cert.unbounded_makespan - 0.5
        )
        report = cross_validate_capacities(schedule, cost, forged)
        assert not report.ok
        (finding,) = report.by_rule("CP004")
        assert "unbounded makespan does not reproduce" in finding.message

    def test_false_backpressure_free_claim_is_caught(self):
        schedule, cost = mepipe_subject()
        cert = certify_capacities(schedule, cost, mode="deadlock-free")
        assert not cert.backpressure_free
        forged = dataclasses.replace(
            cert,
            backpressure_free=True,
            # keep the (correct) makespans so only the claim is false
        )
        report = cross_validate_capacities(schedule, cost, forged)
        assert not report.ok
        hits = report.by_rule("CP004")
        assert any("claims backpressure-free" in f.message for f in hits)

    def test_deadlocking_certificate_is_unsatisfiable(self):
        sched = two_stage_all_forwards()
        cost = UniformCost(sched.problem)
        cert = certify_capacities(sched, cost, capacities={FWD: 2, BWD: 1})
        forged = dataclasses.replace(
            cert, capacities=((0, 1, "F", 1), (1, 0, "B", 1))
        )
        report = cross_validate_capacities(sched, cost, forged)
        assert not report.ok
        assert report.rule_ids() == {"CP001", "CP004"}
        (finding,) = report.by_rule("CP004")
        assert "unsatisfiable" in finding.message


class TestDeterminism:
    def test_reports_are_deterministic(self):
        sched = two_stage_all_forwards()
        a = check_capacities(sched, capacities={FWD: 1, BWD: 1})
        b = check_capacities(sched, capacities={FWD: 1, BWD: 1})
        assert a.to_dict() == b.to_dict()

    def test_plan_is_deterministic(self):
        schedule, cost = mepipe_subject()
        assert (
            infer_capacities(schedule, cost).to_dict()
            == infer_capacities(schedule, cost).to_dict()
        )


class TestCapacityCLI:
    def test_json_round_trip(self, capsys):
        from repro.cli import main

        assert main(["capacity", "mepipe", "--s", "4", "--wgrad-gemms", "3",
                     "--tw", "0.5", "--check", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mode"] == "backpressure-free"
        assert data["report"]["ok"] is True
        assert data["report"]["checked_rules"] == list(CAPACITY_RULES)
        cert = data["certificate"]
        assert cert["backpressure_free"] is True
        assert cert["makespan"] == data["unbounded_makespan"]
        for channel in data["channels"]:
            assert channel["deadlock_free"] <= channel["messages"]

    def test_deadlock_free_mode_warns_but_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["capacity", "mepipe", "--s", "4", "--wgrad-gemms", "3",
                     "--tw", "0.5", "--mode", "deadlock-free"]) == 0
        out = capsys.readouterr().out
        assert "capacity plan for" in out
        assert "CP003" in out

    def test_rule_subset_filters_report(self, capsys):
        from repro.cli import main

        assert main(["capacity", "mepipe", "--s", "4", "--wgrad-gemms", "3",
                     "--mode", "deadlock-free", "--rules", "cp001,cp002",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["report"]["checked_rules"] == ["CP001", "CP002"]
        assert data["report"]["findings"] == []

    def test_unknown_rule_exits_two(self, capsys):
        from repro.cli import main

        assert main(["capacity", "mepipe", "--rules", "XX999"]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_verify_capacity_json_round_trip(self, capsys):
        from repro.cli import main
        from repro.schedules.verify import ALL_RULES

        assert main(["verify", "mepipe", "--s", "4", "--wgrad-gemms", "3",
                     "--capacity", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        # The cost-free merge certifies deadlock freedom (CP001/CP002);
        # CP003/CP004 need a cost model and a certificate — that is
        # `repro capacity`'s job.
        assert set(data["checked_rules"]) == set(ALL_RULES) | {
            "CP001", "CP002",
        }

    def test_verify_capacity_rule_subset(self, capsys):
        from repro.cli import main

        assert main(["verify", "mepipe", "--s", "4", "--wgrad-gemms", "3",
                     "--capacity", "--rules", "CP001,CP002"]) == 0
        assert "2 rules" in capsys.readouterr().out

    def test_check_model_capacity_grid(self, capsys):
        from repro.cli import main

        assert main(["check-model", "grid", "--capacity",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        for entry in data:
            assert entry["ok"] is True
            assert "CP001" in entry["checked_rules"]
