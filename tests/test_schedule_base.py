"""Tests for repro.schedules.base: ops, dependencies, validation."""

import pytest

from repro.schedules import (
    OpId,
    OpKind,
    PipelineProblem,
    Schedule,
    ScheduleError,
    StageProgram,
    validate_schedule,
)


class TestOpId:
    def test_ordering_and_hash(self):
        a = OpId(OpKind.F, 0, 0, 0)
        b = OpId(OpKind.F, 0, 0, 1)
        assert a < b
        assert len({a, b, OpId(OpKind.F, 0, 0, 0)}) == 2

    def test_str_forms(self):
        assert str(OpId(OpKind.B, 2, 1, 3)) == "B2.1c3"
        assert str(OpId(OpKind.W, 0, 0, 1, gemm=2)) == "W0.0c1g2"


class TestProblemShape:
    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineProblem(num_stages=0, num_microbatches=1)
        with pytest.raises(ValueError):
            PipelineProblem(num_stages=2, num_microbatches=2, wgrad_gemms=2)
        with pytest.raises(ValueError):
            PipelineProblem(num_stages=2, num_microbatches=2,
                            chunk_placement="zigzag")

    def test_interleaved_chunk_placement(self):
        pr = PipelineProblem(num_stages=4, num_microbatches=1, virtual_size=2)
        assert [pr.stage_of_chunk(c) for c in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert pr.chunks_of_stage(1) == [1, 5]

    def test_vshape_chunk_placement(self):
        pr = PipelineProblem(num_stages=4, num_microbatches=1, virtual_size=2,
                             chunk_placement="vshape")
        assert [pr.stage_of_chunk(c) for c in range(8)] == [0, 1, 2, 3, 3, 2, 1, 0]
        assert pr.chunks_of_stage(0) == [0, 7]

    def test_activation_units(self):
        # Figure 4(a): p=4, s=2, v=1 -> one F op holds A/8.
        pr = PipelineProblem(num_stages=4, num_microbatches=4, num_slices=2)
        assert pr.activation_units_per_op == pytest.approx(1 / 8)
        # Figure 4(b): v=2 halves it to A/16.
        pr2 = PipelineProblem(num_stages=4, num_microbatches=4, num_slices=2,
                              virtual_size=2)
        assert pr2.activation_units_per_op == pytest.approx(1 / 16)

    def test_op_counts(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=3, num_slices=2,
                             split_backward=True, wgrad_gemms=2)
        ops = pr.all_ops()
        f = [o for o in ops if o.kind is OpKind.F]
        b = [o for o in ops if o.kind is OpKind.B]
        w = [o for o in ops if o.kind is OpKind.W]
        assert len(f) == len(b) == 3 * 2 * 2
        assert len(w) == 3 * 2 * 2 * 2
        assert not list(
            PipelineProblem(num_stages=2, num_microbatches=1).wgrad_ops()
        )


class TestDependencies:
    def test_forward_deps_section41(self):
        """F(mb,sl,c) needs F(mb,sl,c-1) and F(mb,sl-1,c)."""
        pr = PipelineProblem(num_stages=4, num_microbatches=2, num_slices=2)
        deps = pr.deps(OpId(OpKind.F, 1, 1, 2))
        assert OpId(OpKind.F, 1, 1, 1) in deps
        assert OpId(OpKind.F, 1, 0, 2) in deps
        assert len(deps) == 2

    def test_first_forward_has_no_deps(self):
        pr = PipelineProblem(num_stages=4, num_microbatches=2, num_slices=2)
        assert pr.deps(OpId(OpKind.F, 0, 0, 0)) == []
        assert pr.deps(OpId(OpKind.F, 1, 0, 0)) == []

    def test_backward_deps_section41(self):
        """B(mb,sl,c) needs F(mb,sl,c), B(mb,sl,c+1), B(mb,sl+1,c)."""
        pr = PipelineProblem(num_stages=4, num_microbatches=2, num_slices=2)
        deps = pr.deps(OpId(OpKind.B, 0, 0, 1))
        assert OpId(OpKind.F, 0, 0, 1) in deps
        assert OpId(OpKind.B, 0, 0, 2) in deps
        assert OpId(OpKind.B, 0, 1, 1) in deps

    def test_first_backward_needs_all_sample_forwards(self):
        """Transitively, B of the last slice/chunk needs every forward
        of its sample (Section 4.2: at least v*s forwards first)."""
        pr = PipelineProblem(num_stages=2, num_microbatches=1, num_slices=2,
                             virtual_size=2)
        first_b = OpId(OpKind.B, 0, pr.num_slices - 1, pr.num_chunks - 1)
        seen, frontier = set(), [first_b]
        while frontier:
            op = frontier.pop()
            for d in pr.deps(op):
                if d not in seen:
                    seen.add(d)
                    frontier.append(d)
        forwards = {o for o in seen if o.kind is OpKind.F}
        assert len(forwards) == pr.num_slices * pr.num_chunks

    def test_wgrad_depends_only_on_its_backward(self):
        pr = PipelineProblem(num_stages=2, num_microbatches=1, num_slices=2,
                             split_backward=True, wgrad_gemms=3)
        deps = pr.deps(OpId(OpKind.W, 0, 1, 1, gemm=2))
        assert deps == [OpId(OpKind.B, 0, 1, 1)]

    def test_cross_stage_detection(self):
        pr = PipelineProblem(num_stages=4, num_microbatches=1, num_slices=2)
        f1 = OpId(OpKind.F, 0, 0, 1)
        f2 = OpId(OpKind.F, 0, 0, 2)
        f_slice = OpId(OpKind.F, 0, 1, 2)
        assert pr.is_cross_stage(f1, f2)
        assert not pr.is_cross_stage(f2, f_slice)


class TestValidation:
    def _problem(self):
        return PipelineProblem(num_stages=2, num_microbatches=2)

    def test_valid_schedule_passes(self):
        pr = self._problem()
        programs = [
            StageProgram(0, [OpId(OpKind.F, 0, 0, 0), OpId(OpKind.F, 1, 0, 0),
                             OpId(OpKind.B, 0, 0, 0), OpId(OpKind.B, 1, 0, 0)]),
            StageProgram(1, [OpId(OpKind.F, 0, 0, 1), OpId(OpKind.B, 0, 0, 1),
                             OpId(OpKind.F, 1, 0, 1), OpId(OpKind.B, 1, 0, 1)]),
        ]
        validate_schedule(Schedule(pr, programs))

    def test_missing_op_detected(self):
        pr = self._problem()
        programs = [
            StageProgram(0, [OpId(OpKind.F, 0, 0, 0)]),
            StageProgram(1, [OpId(OpKind.F, 0, 0, 1), OpId(OpKind.B, 0, 0, 1)]),
        ]
        with pytest.raises(ScheduleError, match="mismatch"):
            validate_schedule(Schedule(pr, programs))

    def test_wrong_stage_detected(self):
        pr = self._problem()
        programs = [
            StageProgram(0, [OpId(OpKind.F, 0, 0, 1)]),
            StageProgram(1, []),
        ]
        with pytest.raises(ScheduleError, match="stage"):
            validate_schedule(Schedule(pr, programs))

    def test_deadlock_detected(self):
        pr = self._problem()
        # Stage 1 wants B(1) before F(1) of the same micro-batch.
        programs = [
            StageProgram(0, [OpId(OpKind.F, 0, 0, 0), OpId(OpKind.F, 1, 0, 0),
                             OpId(OpKind.B, 0, 0, 0), OpId(OpKind.B, 1, 0, 0)]),
            StageProgram(1, [OpId(OpKind.F, 0, 0, 1), OpId(OpKind.B, 1, 0, 1),
                             OpId(OpKind.B, 0, 0, 1), OpId(OpKind.F, 1, 0, 1)]),
        ]
        with pytest.raises(ScheduleError, match="deadlock"):
            validate_schedule(Schedule(pr, programs))

    def test_duplicate_detected(self):
        pr = PipelineProblem(num_stages=1, num_microbatches=1)
        programs = [StageProgram(0, [OpId(OpKind.F, 0, 0, 0),
                                     OpId(OpKind.F, 0, 0, 0)])]
        with pytest.raises(ScheduleError, match="duplicate"):
            validate_schedule(Schedule(pr, programs))
