"""Functional correctness of pipelined execution (artifact experiment E0).

Every scheduling method must produce the same loss and bit-comparable
gradients as sequential execution, and the live-context statistics must
reflect each method's memory behaviour.
"""

import numpy as np
import pytest

from repro.data import token_batches
from repro.model import tiny_spec
from repro.nn import build_model, sequential_step
from repro.pipeline import PipelineRuntime
from repro.schedules import ScheduleError, build_problem, build_schedule

SPEC = tiny_spec(hidden_size=32, num_layers=6, num_heads=4,
                 ffn_hidden_size=64, vocab_size=31, seq_length=16)
# 6 layers + embedding + head = 8 schedulable components.
N, B = 4, 2


@pytest.fixture(scope="module")
def reference():
    tokens, targets = token_batches(SPEC.vocab_size, N, B, SPEC.seq_length, seed=5)
    model = build_model(SPEC, seed=11)
    loss = sequential_step(model, tokens, targets)
    grads = {k: v.copy() for k, v in model.named_grads().items()}
    return tokens, targets, loss, grads


def run_method(method, tokens, targets, p=4, **kwargs):
    problem = build_problem(method, p, N, **kwargs)
    schedule = build_schedule(method, problem)
    model = build_model(SPEC, seed=11)
    runtime = PipelineRuntime(model, tokens, targets)
    result = runtime.run(schedule)
    return model, result


ALL_METHODS = [
    ("dapple", {}),
    ("gpipe", {}),
    ("terapipe", {"num_slices": 4}),
    ("vpp", {"virtual_size": 2}),
    ("hanayo", {"virtual_size": 2}),
    ("zb", {}),
    ("zbv", {}),
    ("svpp", {"num_slices": 2}),
    ("svpp", {"num_slices": 4, "virtual_size": 2}),
    ("mepipe", {"num_slices": 4, "wgrad_gemms": 3}),
    ("mepipe", {"num_slices": 2, "virtual_size": 2, "wgrad_gemms": 2}),
]


class TestGradientExactness:
    @pytest.mark.parametrize("method,kwargs", ALL_METHODS,
                             ids=[f"{m}-{k}" for m, k in ALL_METHODS])
    def test_loss_and_grads_match_sequential(self, reference, method, kwargs):
        tokens, targets, ref_loss, ref_grads = reference
        model, result = run_method(method, tokens, targets, **kwargs)
        assert result.loss == pytest.approx(ref_loss, abs=1e-12)
        for key, grad in model.named_grads().items():
            assert np.allclose(grad, ref_grads[key], atol=1e-12), key

    def test_every_op_executed_exactly_once(self, reference):
        tokens, targets, _unused, _unused2 = reference
        problem = build_problem("mepipe", 4, N, num_slices=2, wgrad_gemms=2)
        _model, result = run_method("mepipe", tokens, targets,
                                    num_slices=2, wgrad_gemms=2)
        assert result.ops_executed == len(problem.all_ops())


class TestMemoryBehaviour:
    def test_terapipe_pins_everything(self, reference):
        tokens, targets, _unused, _unused2 = reference
        _m, tera = run_method("terapipe", tokens, targets, num_slices=4)
        _m, svpp = run_method("svpp", tokens, targets, num_slices=4)
        # TeraPipe holds all n*s slice contexts; SVPP a small multiple
        # of p (Section 2.1 vs Section 4.1).
        assert tera.peak_live_contexts == N * 4 * 2  # n*s slices x 2 comps
        assert tera.peak_live_contexts > 2 * svpp.peak_live_contexts

    def test_svpp_first_stage_matches_f(self, reference):
        """Live contexts on stage 0 equal f = v*max(p,s)+min(p,s)-1."""
        tokens, targets, _unused, _unused2 = reference
        _m, res = run_method("svpp", tokens, targets,
                             num_slices=4, virtual_size=2)
        # 8 components over 8 chunks -> 1 component per chunk, so live
        # contexts == live F ops.
        assert res.stage_stats[0].peak_live_contexts == 11

    def test_dapple_staircase(self, reference):
        tokens, targets, _unused, _unused2 = reference
        _m, res = run_method("dapple", tokens, targets)
        peaks = [s.peak_live_contexts for s in res.stage_stats]
        assert peaks == sorted(peaks, reverse=True)

    def test_mepipe_defers_wgrads(self, reference):
        tokens, targets, _unused, _unused2 = reference
        _m, res = run_method("mepipe", tokens, targets,
                             num_slices=4, wgrad_gemms=3)
        assert all(s.wgrad_tasks_run > 0 for s in res.stage_stats)


class TestErrors:
    def test_microbatch_mismatch(self, reference):
        tokens, targets, _unused, _unused2 = reference
        problem = build_problem("dapple", 4, N + 1)
        schedule = build_schedule("dapple", problem)
        runtime = PipelineRuntime(build_model(SPEC, seed=11), tokens, targets)
        with pytest.raises(ScheduleError, match="micro-batches"):
            runtime.run(schedule)

    def test_indivisible_slices(self, reference):
        tokens, targets, _unused, _unused2 = reference
        problem = build_problem("terapipe", 4, N, num_slices=3)
        schedule = build_schedule("terapipe", problem)
        runtime = PipelineRuntime(build_model(SPEC, seed=11), tokens, targets)
        with pytest.raises(ScheduleError, match="divisible"):
            runtime.run(schedule)


class TestTrainingLoop:
    def test_pipelined_adam_training_converges(self, reference):
        from repro.nn import Adam
        tokens, targets, _unused, _unused2 = reference
        problem = build_problem("mepipe", 4, N, num_slices=2, wgrad_gemms=2)
        schedule = build_schedule("mepipe", problem)
        model = build_model(SPEC, seed=11)
        runtime = PipelineRuntime(model, tokens, targets)
        optimizer = Adam(model, lr=3e-3)
        losses = []
        for _step in range(6):
            losses.append(runtime.run(schedule).loss)
            optimizer.step()
        assert losses[-1] < losses[0]


class TestIncrementalAccounting:
    def test_incremental_live_stats_match_full_scan(self, reference,
                                                    monkeypatch):
        """The O(1)-per-op delta accounting never drifts from a full
        re-sum of live_bytes()/live_contexts over every component."""
        import repro.pipeline.runtime as runtime_mod
        from repro.pipeline.stage import StageExecutor

        checked = {"ops": 0}

        class AuditingExecutor(StageExecutor):
            def execute(self, op, payload=None):
                outcome = super().execute(op, payload)
                assert (self._live_contexts, self._live_bytes) == \
                    self.full_live_scan(), f"drift after {op}"
                checked["ops"] += 1
                return outcome

        monkeypatch.setattr(runtime_mod, "StageExecutor", AuditingExecutor)
        tokens, targets, _unused, _unused2 = reference
        for method, kwargs in (("mepipe", {"num_slices": 4, "wgrad_gemms": 3}),
                               ("vpp", {"virtual_size": 2})):
            run_method(method, tokens, targets, **kwargs)
        assert checked["ops"] > 0
