"""The stable ``repro.api`` facade: every blessed name resolves, and
the typed request/response surface round-trips, fingerprints, and
executes identically to the library entry points it wraps."""

import json
import warnings

import pytest

from repro import api


def test_all_names_resolve():
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert not missing


def test_all_is_sorted_and_complete():
    assert list(api.__all__) == sorted(api.__all__)
    public = {n for n in dir(api) if not n.startswith("_")}
    # every __all__ name is public; the facade re-exports nothing hidden
    assert set(api.__all__) <= public


def test_facade_names_are_the_canonical_objects():
    from repro.analysis import analyze_spec
    from repro.obs import NULL_SINK, MemorySink
    from repro.pipeline import PipelineRuntime
    from repro.planner import search_method
    from repro.schedules import build_problem, build_schedule
    from repro.schedules.verify import verify_schedule
    from repro.sim import simulate

    assert api.build_problem is build_problem
    assert api.build_schedule is build_schedule
    assert api.simulate is simulate
    assert api.PipelineRuntime is PipelineRuntime
    assert api.verify is verify_schedule
    assert api.check_model is analyze_spec
    assert api.plan is search_method
    assert api.MemorySink is MemorySink
    assert api.NULL_SINK is NULL_SINK


def test_end_to_end_through_facade():
    problem = api.build_problem("mepipe", 2, 4, num_slices=2, wgrad_gemms=3)
    schedule = api.build_schedule("mepipe", problem)
    assert api.verify(schedule).ok
    sink = api.MemorySink()
    result = api.simulate(schedule, api.UniformCost(problem), sink=sink)
    assert isinstance(result, api.PipelineResult)
    assert isinstance(result.metrics(), api.IterationMetrics)
    assert len(sink.events) > 0


def test_facade_import_emits_no_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        import importlib

        importlib.reload(api)


def test_deprecated_cross_validate_warns_and_resolves():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fn = api.cross_validate
    assert fn is api.cross_validate_evaluation
    assert len(caught) == 1
    assert issubclass(caught[0].category, DeprecationWarning)
    assert "cross_validate_evaluation" in str(caught[0].message)
    # The warning points at this test file, not at the facade module.
    assert caught[0].filename == __file__


def test_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        api.no_such_name


# ----------------------------------------------------------------------
# Typed request/response wire surface
# ----------------------------------------------------------------------
SAMPLE_REQUESTS = [
    api.PlanRequest(model="7b", global_batch_size=64, methods=("mepipe",)),
    api.VerifyRequest(
        method="mepipe",
        shape=api.ShapeSpec(slices=4, wgrad_gemms=3),
        rules=("SC001",),
        capacity=True,
    ),
    api.CheckModelRequest(method="grid", model="tiny"),
    api.EvaluateRequest(method="zb", tw=0.5, check=True),
    api.CapacityRequest(method="zbv", mode="deadlock-free"),
    api.SimulateRequest(method="dapple", tw=2.0),
]

SAMPLE_RESPONSES = [
    api.PlanResponse(methods=({"method": "mepipe", "best": None},)),
    api.VerifyResponse(ok=False, reports=({"ok": False},), text="bad"),
    api.CheckModelResponse(reports=({"ok": True}, {"ok": True})),
    api.EvaluateResponse(evaluation={"iteration_s": 1.0}, bounds=None),
    api.CapacityResponse(plan={"channels": []}, mode="full"),
    api.SimulateResponse(schedule="mepipe", metrics={"makespan": 2.0}),
    api.ErrorInfo(code="timeout", message="too slow", detail={"t": 1}),
]


@pytest.mark.parametrize(
    "message", SAMPLE_REQUESTS + SAMPLE_RESPONSES,
    ids=lambda m: m.KIND,
)
def test_message_round_trips(message):
    revived = type(message).from_json(message.to_json())
    assert revived == message
    # Canonical JSON is deterministic: same object, same bytes.
    assert revived.to_json() == message.to_json()


@pytest.mark.parametrize(
    "request_", SAMPLE_REQUESTS, ids=lambda r: r.KIND
)
def test_registry_revival(request_):
    assert api.request_from_dict(request_.to_dict()) == request_


def test_response_registry_revival():
    for response in SAMPLE_RESPONSES:
        assert api.response_from_dict(response.to_dict()) == response


def test_every_message_carries_schema_version():
    for message in SAMPLE_REQUESTS + SAMPLE_RESPONSES:
        data = message.to_dict()
        assert data["schema_version"] == api.SCHEMA_VERSION
        assert data["kind"] == message.KIND


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(api.RequestError):
        api.EvaluateRequest.from_dict({"kind": "evaluate", "bogus": 1})
    with pytest.raises(api.RequestError):
        api.VerifyRequest.from_dict(
            {"kind": "verify", "shape": {"bogus": 1}}
        )


def test_from_dict_rejects_wrong_kind_and_schema():
    with pytest.raises(api.RequestError):
        api.EvaluateRequest.from_dict({"kind": "plan"})
    with pytest.raises(api.RequestError) as excinfo:
        api.EvaluateRequest.from_dict(
            {"kind": "evaluate", "schema_version": 999}
        )
    assert excinfo.value.code == "schema-mismatch"


def test_request_from_dict_rejects_unknown_kind():
    with pytest.raises(api.RequestError):
        api.request_from_dict({"kind": "frobnicate"})


def test_fingerprint_ignores_volatile_fields():
    base = api.PlanRequest(model="13b", global_batch_size=32)
    same = api.PlanRequest(
        model="13b", global_batch_size=32, jobs=8, use_cache=False
    )
    different = api.PlanRequest(model="13b", global_batch_size=64)
    assert base.fingerprint() == same.fingerprint()
    assert base.fingerprint() != different.fingerprint()


def test_fingerprint_distinguishes_kinds_and_shapes():
    a = api.EvaluateRequest(method="mepipe")
    b = api.SimulateRequest(method="mepipe")
    c = api.EvaluateRequest(
        method="mepipe", shape=api.ShapeSpec(slices=2)
    )
    assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


# ----------------------------------------------------------------------
# execute(): parity with the library entry points
# ----------------------------------------------------------------------
def test_execute_verify_matches_library():
    response = api.execute(
        api.VerifyRequest(
            method="mepipe", shape=api.ShapeSpec(slices=4, wgrad_gemms=3)
        )
    )
    problem = api.build_problem("mepipe", 4, 4, num_slices=4, wgrad_gemms=3)
    schedule = api.build_schedule("mepipe", problem)
    report = api.verify(schedule, method="mepipe")
    assert response.ok == report.ok
    assert response.reports == (report.to_dict(),)
    assert response.text == report.render_text()


def test_execute_evaluate_carries_bounds_and_text():
    response = api.execute(api.EvaluateRequest(method="mepipe"))
    assert response.ok
    assert "iteration" in response.text
    assert set(response.bounds) == {"lower_s", "upper_s"}
    assert "build-free bounds" in response.text
    assert json.loads(response.to_json())["kind"] == "evaluate.result"


def test_execute_simulate_reports_metrics():
    response = api.execute(api.SimulateRequest(method="dapple"))
    assert response.ok
    assert response.schedule
    assert response.metrics["ops_executed"] > 0
    assert "bubble" in response.text


def test_execute_unknown_method_is_exit_2_http_400():
    with pytest.raises(api.RequestError) as excinfo:
        api.execute(api.EvaluateRequest(method="nosuch"))
    assert excinfo.value.exit_status == 2
    assert excinfo.value.http_status == 400
    assert excinfo.value.code == "unknown-method"


def test_execute_bad_shape_is_exit_2():
    with pytest.raises(api.RequestError) as excinfo:
        api.execute(
            api.VerifyRequest(
                method="mepipe", shape=api.ShapeSpec(slices=0)
            )
        )
    assert excinfo.value.exit_status == 2
    assert excinfo.value.code == "invalid-shape"


def test_execute_unknown_rule_is_request_error():
    with pytest.raises(api.RequestError) as excinfo:
        api.execute(api.VerifyRequest(method="mepipe", rules=("XX",)))
    assert excinfo.value.code == "unknown-rule"


def test_execute_plan_small_sweep_with_sink():
    sink = api.MemorySink()
    response = api.execute(
        api.PlanRequest(
            model="13b",
            global_batch_size=32,
            methods=("mepipe",),
            max_spp=4,
            use_cache=False,
        ),
        sink=sink,
    )
    assert response.ok
    (entry,) = response.methods
    assert entry["method"] == "mepipe"
    assert entry["best"] is not None
    assert entry["describe"]
    assert response.cache is None
    # The sweep was observable on the bus: an eval span per evaluated
    # configuration (the tiered evaluator may add confirmation passes),
    # plus the sweep counters.
    eval_spans = [e for e in sink.spans() if e.cat == "eval"]
    assert len(eval_spans) >= entry["evaluated"]
    assert sink.counters("evaluated")
    # And the response is wire-clean.
    assert api.response_from_dict(response.to_dict()) == response
