"""The stable ``repro.api`` facade: every blessed name resolves."""

import warnings

from repro import api


def test_all_names_resolve():
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert not missing


def test_all_is_sorted_and_complete():
    assert list(api.__all__) == sorted(api.__all__)
    public = {n for n in dir(api) if not n.startswith("_")}
    # every __all__ name is public; the facade re-exports nothing hidden
    assert set(api.__all__) <= public


def test_facade_names_are_the_canonical_objects():
    from repro.analysis import analyze_spec
    from repro.obs import NULL_SINK, MemorySink
    from repro.pipeline import PipelineRuntime
    from repro.planner import search_method
    from repro.schedules import build_problem, build_schedule
    from repro.schedules.verify import verify_schedule
    from repro.sim import simulate

    assert api.build_problem is build_problem
    assert api.build_schedule is build_schedule
    assert api.simulate is simulate
    assert api.PipelineRuntime is PipelineRuntime
    assert api.verify is verify_schedule
    assert api.check_model is analyze_spec
    assert api.plan is search_method
    assert api.MemorySink is MemorySink
    assert api.NULL_SINK is NULL_SINK


def test_end_to_end_through_facade():
    problem = api.build_problem("mepipe", 2, 4, num_slices=2, wgrad_gemms=3)
    schedule = api.build_schedule("mepipe", problem)
    assert api.verify(schedule).ok
    sink = api.MemorySink()
    result = api.simulate(schedule, api.UniformCost(problem), sink=sink)
    assert isinstance(result, api.PipelineResult)
    assert isinstance(result.metrics(), api.IterationMetrics)
    assert len(sink.events) > 0


def test_facade_import_emits_no_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        import importlib

        importlib.reload(api)
